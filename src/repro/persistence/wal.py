"""Append-only write-ahead log with CRC framing, group commit and torn-tail recovery.

Every corpus mutation of a durable service is logged **before** it is
applied in memory, in the classic HTAP shape (an update log decoupled from
the read-optimised state): an ``add`` record carries the fully annotated
:class:`~repro.nlp.types.Document` so replay never re-runs NLP annotation,
and a ``remove`` record carries the document id.

Frame format (little-endian)::

    +----------+----------+-------------------+
    | len: u32 | crc: u32 | payload (pickled) |
    +----------+----------+-------------------+

``crc`` is the zlib CRC-32 of the payload.  A crash can tear at most the
final frame (appends are sequential and fsynced per commit batch);
:func:`read_records` stops at the first truncated or corrupt frame and
reports how many bytes were valid, so recovery can truncate the torn tail
and keep appending to the same segment.

**Group commit.**  :meth:`WalWriter.append` is thread-safe and coalesces
concurrent durability waits into one ``fsync``: each appender writes its
frame into the OS buffer under the writer mutex, then either becomes the
*sync leader* (performs the fsync covering every frame buffered so far) or
waits on a condition variable until a leader's fsync covers its frame.  One
disk flush therefore commits a whole batch of records — the durability
guarantee per record is unchanged (``append`` returns only once the record
is on disk), but N concurrent writers share ~1 fsync instead of paying N.
A ``sync_interval`` knob optionally makes the leader linger before
flushing, trading commit latency for larger batches under bursty load.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..errors import PersistenceError
from ..nlp.types import Document
from ..observability.tracing import Span, TraceContext
from .layout import fsync_dir as _fsync_dir

__all__ = [
    "OP_ADD",
    "OP_REMOVE",
    "CommitTicket",
    "FrameScan",
    "ReplayResult",
    "WalCursor",
    "WalPosition",
    "WalRecord",
    "WalWriter",
    "WriteAheadLog",
    "encode_frame",
    "read_frames",
    "read_records",
]

_HEADER = struct.Struct("<II")

OP_ADD = "add"
OP_REMOVE = "remove"


@dataclass(frozen=True)
class WalRecord:
    """One logged corpus mutation.

    ``trace`` is optional distributed-tracing metadata: the
    :class:`~repro.observability.tracing.TraceContext` of the ingest
    that produced the record.  Payloads ship to replicas verbatim, so a
    carried context lets the shipper's ship span and the replica's apply
    span join the originating trace.  Untraced records keep the
    original 3-tuple payload format byte-for-byte (and
    :meth:`from_payload` accepts both shapes), so old WAL segments and
    mixed-version replication keep working.
    """

    op: str
    doc_id: str
    document: Document | None = None  # annotated payload for OP_ADD
    trace: TraceContext | None = None  # propagated ingest trace context

    def to_payload(self) -> bytes:
        """Serialise this record to the frame payload bytes."""
        if self.trace is None:
            fields: tuple = (self.op, self.doc_id, self.document)
        else:
            fields = (self.op, self.doc_id, self.document, self.trace)
        return pickle.dumps(fields, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_payload(cls, payload: bytes) -> "WalRecord":
        """Inverse of :meth:`to_payload` (3- and 4-tuple payloads)."""
        fields = pickle.loads(payload)
        op, doc_id, document = fields[:3]
        trace = fields[3] if len(fields) > 3 else None
        if not isinstance(trace, TraceContext):
            trace = None
        return cls(op=op, doc_id=doc_id, document=document, trace=trace)


def encode_frame(payload: bytes) -> bytes:
    """One CRC-framed record, ready to append."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass(frozen=True, order=True)
class WalPosition:
    """A point in the log's history: ``(segment_id, byte_offset)``.

    Segment ids increase monotonically across rotations and offsets grow
    within a segment, so tuple ordering gives a total order over the whole
    log history — positions work as replication offsets and as the
    read-your-writes tokens the replica router compares.
    """

    segment_id: int
    offset: int

    def __str__(self) -> str:
        return f"{self.segment_id}:{self.offset}"


@dataclass
class FrameScan:
    """Outcome of scanning raw frames from one segment (see :func:`read_frames`)."""

    #: ``(end_offset, payload)`` per whole frame, in log order; the payload
    #: is the pickled record bytes, untouched (re-shippable verbatim)
    frames: list[tuple[int, bytes]]
    #: byte offset just past the last whole frame (resume point)
    end_offset: int
    #: True when trailing bytes formed no complete valid frame — on a live
    #: segment that just means the writer is mid-append (retry later); on a
    #: sealed segment it means corruption
    partial_tail: bool


def read_frames(
    path: str | Path, start_offset: int = 0, max_bytes: int | None = None
) -> FrameScan:
    """Scan whole CRC-valid frames from byte *start_offset* of one segment.

    The streaming sibling of :func:`read_records`: payloads come back raw
    (not decoded into :class:`WalRecord`), each tagged with the byte offset
    just past its frame, so a log shipper can forward bytes verbatim and
    resume from any reported offset.  Stops at the first incomplete or
    CRC-invalid frame (``partial_tail``), or once more than *max_bytes* of
    payload have been collected.
    """
    path = Path(path)
    frames: list[tuple[int, bytes]] = []
    offset = start_offset
    collected = 0
    partial = False
    with path.open("rb") as handle:
        handle.seek(start_offset)
        while True:
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                partial = bool(header)
                break
            length, crc = _HEADER.unpack(header)
            payload = handle.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                partial = True
                break
            offset += _HEADER.size + length
            frames.append((offset, payload))
            collected += length
            if max_bytes is not None and collected >= max_bytes:
                break
    return FrameScan(frames=frames, end_offset=offset, partial_tail=partial)


class WalCursor:
    """A read-only cursor over a layout's WAL, tolerant of live appends,
    rotation, and sealed-segment boundaries.

    The shipping primitive: positioned at a :class:`WalPosition`, each
    :meth:`poll` returns the whole frames that became readable past the
    cursor — following the active segment's growing tail, and crossing into
    segment ``N+1`` once segment ``N`` is sealed (rotation creates the next
    segment only *after* the sealed one is complete, so observing the
    ``N+1`` file proves ``N`` will grow no further).  The caller owns
    keeping the segments alive: a primary prunes shipped-from segments only
    past every cursor's pinned floor (see ``KokoService.register_wal_pin``).
    """

    def __init__(self, layout, position: WalPosition) -> None:
        self._layout = layout
        self._segment_id = position.segment_id
        self._offset = position.offset

    @property
    def position(self) -> WalPosition:
        """The cursor's current resume point."""
        return WalPosition(self._segment_id, self._offset)

    def _next_segment_exists(self) -> bool:
        return self._layout.wal_path(self._segment_id + 1).exists()

    def poll(
        self,
        max_records: int | None = None,
        max_bytes: int | None = None,
        up_to: WalPosition | None = None,
    ) -> list[tuple[WalPosition, bytes]]:
        """Whole frames available past the cursor, advancing it.

        Returns ``(position, payload)`` pairs where *position* is the log
        position just past that frame (what a follower acks after applying
        it).  An empty list means the cursor is caught up with the durable
        tail for now.  ``up_to`` bounds the read to positions at or before
        it — a shipping primary passes its **durable** end so followers
        never receive a flushed-but-unsynced record that a crash could
        still discard (a follower ahead of durability could diverge from
        the recovered log).  Raises :class:`PersistenceError` when the
        cursor's segment was pruned out from under it (the follower must
        re-bootstrap from a snapshot) or a **sealed** segment ends in a
        corrupt frame.
        """
        out: list[tuple[WalPosition, bytes]] = []
        budget = max_bytes
        while max_records is None or len(out) < max_records:
            path = self._layout.wal_path(self._segment_id)
            if not path.exists():
                newer = [
                    s
                    for s in self._layout.wal_segment_ids()
                    if s > self._segment_id
                ]
                if newer:
                    raise PersistenceError(
                        f"WAL segment {self._segment_id} was pruned under the "
                        f"cursor (oldest remaining: {min(newer)}); re-bootstrap"
                    )
                return out  # segment not created yet: caught up
            scan = read_frames(path, self._offset, max_bytes=budget)
            for end_offset, payload in scan.frames:
                position = WalPosition(self._segment_id, end_offset)
                if up_to is not None and position > up_to:
                    return out  # past the durability horizon: stop here
                self._offset = end_offset
                out.append((position, payload))
                if budget is not None:
                    budget -= len(payload)
                if (max_records is not None and len(out) >= max_records) or (
                    budget is not None and budget <= 0
                ):
                    return out
            if not self._next_segment_exists():
                return out  # live tail of the active segment
            if scan.partial_tail:
                # The next segment appeared, so this one is sealed — but the
                # seal may have landed after our read.  One re-scan settles
                # it: still-partial bytes in a sealed segment are corruption.
                rescan = read_frames(path, self._offset, max_bytes=budget)
                if rescan.partial_tail and not rescan.frames:
                    raise PersistenceError(
                        f"sealed WAL segment {self._segment_id} ends in a "
                        f"corrupt frame at offset {self._offset}"
                    )
                continue  # pick the re-scanned frames up next iteration
            self._segment_id += 1
            self._offset = 0
        return out


@dataclass
class ReplayResult:
    """Outcome of scanning one WAL segment."""

    records: list[WalRecord]
    valid_bytes: int
    torn: bool  # a truncated or corrupt frame ended the scan early


def read_records(path: str | Path) -> ReplayResult:
    """Scan one segment, tolerating a torn final frame.

    Returns every record of the longest valid prefix.  ``torn`` is True when
    trailing bytes had to be discarded (truncated header, truncated payload,
    or CRC mismatch) — the durable prefix property crash recovery relies on.
    With group commit a crash between the buffered append and the batch
    fsync can lose several trailing records at once; they are still a
    *suffix*, so the prefix property is unaffected.
    """
    path = Path(path)
    records: list[WalRecord] = []
    valid = 0
    torn = False
    with path.open("rb") as handle:
        while True:
            header = handle.read(_HEADER.size)
            if not header:
                break
            if len(header) < _HEADER.size:
                torn = True
                break
            length, crc = _HEADER.unpack(header)
            payload = handle.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                torn = True
                break
            try:
                records.append(WalRecord.from_payload(payload))
            except Exception:
                torn = True
                break
            valid += _HEADER.size + length
    return ReplayResult(records=records, valid_bytes=valid, torn=torn)


class WalWriter:
    """Thread-safe framed appends to one segment file, with group commit.

    Concurrent ``append`` calls serialise their buffered writes under a
    mutex (frames never interleave), then share fsyncs through the
    leader/follower protocol described in the module docstring.

    Parameters
    ----------
    path:
        Segment file; created (with parents) when missing.
    sync:
        When True (default) ``append`` returns only after an fsync covers
        the record.  ``sync=False`` trades that for OS-buffered flushes —
        still crash-consistent at the frame level thanks to the CRC
        framing, but the tail may be lost on power failure (bulk loads).
    truncate_to:
        Discard bytes past this offset before appending (recovery hands the
        valid-prefix length here to drop a torn tail).
    sync_interval:
        Seconds the sync leader lingers before flushing, letting more
        concurrent appends join the batch.  ``0.0`` (default) flushes
        immediately; batching still happens while a leader's fsync is in
        flight.
    on_fsync:
        Callback invoked after each fsync with the number of records the
        flush made durable (the group-commit batch size).
    """

    def __init__(
        self,
        path: str | Path,
        sync: bool = True,
        truncate_to: int | None = None,
        sync_interval: float = 0.0,
        on_fsync: Callable[[int], None] | None = None,
    ):
        self.path = Path(path)
        self.sync = sync
        self.sync_interval = sync_interval
        self.on_fsync = on_fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if truncate_to is not None and self.path.exists():
            with self.path.open("r+b") as handle:
                handle.truncate(truncate_to)
        self._handle: io.BufferedWriter | None = self.path.open("ab")
        self._bytes_written = self.path.stat().st_size
        # group-commit state: _write_lock orders buffered frame writes;
        # _sync_cond hands out sync leadership and publishes durability
        self._write_lock = threading.Lock()
        self._sync_cond = threading.Condition()
        self._synced_bytes = self._bytes_written  # pre-existing prefix is durable
        self._unsynced_records = 0
        self._leader_active = False
        self._failed = False

    @property
    def size_bytes(self) -> int:
        """Current segment size (durable prefix plus buffered frames)."""
        return self._bytes_written

    @property
    def synced_bytes(self) -> int:
        """Length of the segment prefix an fsync has made durable."""
        with self._sync_cond:
            return self._synced_bytes

    def append(self, record: WalRecord, trace: Span | None = None) -> int:
        """Frame, append and (with ``sync``) make one record durable.

        Returns the frame size in bytes.  Thread-safe: concurrent appends
        keep frames whole and share fsyncs via group commit; the call
        returns only once the record is covered by an fsync (or, with
        ``sync=False``, once it reaches the OS buffer).  With ``trace``
        given, the buffered write and the group-commit durability wait are
        recorded as ``wal_append`` / ``fsync_wait`` child spans, splitting
        serialisation cost from commit latency.

        A failed buffered write (ENOSPC, I/O error) must not leave a
        partial frame mid-segment: later successful appends would land
        *after* the garbage, and recovery — which stops at the first
        corrupt frame — would silently drop them.  On failure the segment
        is truncated back to the last good frame boundary before the error
        propagates; if even that fails the writer declares itself closed so
        every further append fails loudly instead of corrupting the log.
        A failed *fsync* poisons the writer and truncates the segment back
        to its last durable boundary: durability can no longer be promised,
        every append waiting on the discarded suffix raises, and the log
        keeps only what was acknowledged.
        """
        started = time.perf_counter() if trace is not None else 0.0
        frame = encode_frame(record.to_payload())
        target = self._buffered_append(frame)
        if trace is not None:
            trace.record(
                "wal_append", time.perf_counter() - started, bytes=len(frame)
            )
        if self.sync:
            wait_started = time.perf_counter() if trace is not None else 0.0
            self._await_durable(target)
            if trace is not None:
                trace.record("fsync_wait", time.perf_counter() - wait_started)
        return len(frame)

    def append_pipelined(
        self, record: WalRecord, trace: Span | None = None
    ) -> tuple[int, "CommitTicket"]:
        """Buffered append that returns **before** the fsync, with a ticket.

        The pipelined-ack primitive: the frame reaches the OS buffer (so
        log order is fixed) and the caller gets a :class:`CommitTicket`
        whose :meth:`CommitTicket.wait` drives the group commit covering
        this frame.  The waiter itself becomes the sync leader when none is
        active, so durability needs no background flusher — whoever first
        cares about the commit pays (and shares) the fsync.  Returns
        ``(frame_bytes, ticket)``.
        """
        started = time.perf_counter() if trace is not None else 0.0
        frame = encode_frame(record.to_payload())
        target = self._buffered_append(frame)
        if trace is not None:
            trace.record(
                "wal_append", time.perf_counter() - started, bytes=len(frame)
            )
        return len(frame), CommitTicket(self, target)

    def _buffered_append(self, frame: bytes) -> int:
        """Write one frame into the OS buffer under the mutex; returns the
        byte offset an fsync must reach to cover it (see :meth:`append` for
        the partial-frame failure contract)."""
        with self._write_lock:
            if self._handle is None or self._failed:
                raise PersistenceError(f"WAL segment {self.path} is closed")
            try:
                self._handle.write(frame)
                self._handle.flush()
            except Exception:
                self._rewind_to_last_good_frame()
                raise
            self._bytes_written += len(frame)
            self._unsynced_records += 1
            return self._bytes_written

    def flush(self) -> None:
        """Block until every frame appended before this call is durable.

        A no-op for ``sync=False`` writers (durability is best-effort by
        construction) and for cleanly closed writers (close fsyncs).
        Raises :class:`PersistenceError` when the writer is poisoned.
        """
        if not self.sync:
            return
        with self._write_lock:
            target = self._bytes_written
        self._await_durable(target)

    def _await_durable(self, target: int) -> None:
        """Block until an fsync covers byte offset *target* (group commit).

        The first waiter whose frames are not yet durable becomes the sync
        leader and flushes for everyone buffered so far; the rest wait on
        the condition variable.  Because a waiter's own write always
        precedes its leadership claim, one leader round always covers the
        leader's record — followers re-check and take over leadership if
        their frames arrived after the in-flight flush point.
        """
        while True:
            with self._sync_cond:
                if self._synced_bytes >= target:
                    return
                if self._failed:
                    raise PersistenceError(
                        f"WAL segment {self.path} failed to fsync; record durability unknown"
                    )
                if not self._leader_active:
                    self._leader_active = True
                    break
                self._sync_cond.wait()
        # --- we are the sync leader for this batch
        try:
            if self.sync_interval > 0.0:
                time.sleep(self.sync_interval)
            with self._write_lock:
                if self._handle is None:
                    raise PersistenceError(f"WAL segment {self.path} is closed")
                end = self._bytes_written
                batch = self._unsynced_records
                self._unsynced_records = 0
                # dup the fd: a concurrent failed append may close/reopen
                # the handle (rewind) while we fsync outside the lock; the
                # dup keeps referencing the same open file description, so
                # the flush is neither lost nor aimed at a recycled fd
                fileno = os.dup(self._handle.fileno())
            try:
                os.fsync(fileno)
            finally:
                os.close(fileno)
        except BaseException:
            # BaseException on purpose: a KeyboardInterrupt mid-fsync must
            # still relinquish leadership and wake the followers, or they
            # wait on the condition forever.
            self._fail_and_discard_unsynced_tail()
            raise
        with self._sync_cond:
            self._synced_bytes = max(self._synced_bytes, end)
            self._leader_active = False
            self._sync_cond.notify_all()
        if batch and self.on_fsync is not None:
            self.on_fsync(batch)

    def _fail_and_discard_unsynced_tail(self) -> None:
        """Poison the writer after a failed fsync and truncate the segment
        back to its last durable boundary.

        Every append waiting on that suffix is about to raise (poisoned),
        so nothing truncated was ever acknowledged — keeping the frames
        would instead let a later restart replay operations whose callers
        saw a failure.  Best-effort: if even the truncate fails, the
        unacknowledged tail may survive to be replayed.
        """
        with self._write_lock:
            self._failed = True
            if self._handle is not None:
                try:
                    self._handle.close()
                except Exception:
                    pass
                self._handle = None
            try:
                with self.path.open("r+b") as handle:
                    handle.truncate(self._synced_bytes)
                self._bytes_written = self._synced_bytes
            except Exception:
                pass
        with self._sync_cond:
            self._leader_active = False
            self._sync_cond.notify_all()

    def _rewind_to_last_good_frame(self) -> None:
        """Discard a partial frame after a failed append (see :meth:`append`)."""
        try:
            self._handle.close()  # drops any buffered partial bytes
        except Exception:
            pass
        try:
            with self.path.open("r+b") as handle:
                handle.truncate(self._bytes_written)
            self._handle = self.path.open("ab")
        except Exception:
            self._handle = None  # segment unusable; appends now raise

    def close(self) -> None:
        """Flush, fsync (when ``sync``) and close the segment (idempotent)."""
        with self._write_lock:
            if self._handle is None:
                return
            self._handle.flush()
            if self.sync:
                os.fsync(self._handle.fileno())
            end = self._bytes_written
            batch = self._unsynced_records
            self._unsynced_records = 0
            self._handle.close()
            self._handle = None
        with self._sync_cond:
            self._synced_bytes = max(self._synced_bytes, end)
            self._sync_cond.notify_all()
        if batch and self.sync and self.on_fsync is not None:
            self.on_fsync(batch)


class CommitTicket:
    """A claim on the durability of one pipelined WAL append.

    Handed out by :meth:`WalWriter.append_pipelined` (and surfaced by the
    service's ``wait_durable=False`` ingest path as the *commit future*):
    the record is already in log order and visible to queries, but may not
    yet have been fsynced.  :meth:`wait` blocks until a group commit covers
    the record — the waiter becomes the sync leader when none is active, so
    waiting *drives* the flush rather than hoping for one.  Tickets from a
    non-``sync`` writer are trivially durable (best-effort by construction).
    """

    __slots__ = ("_writer", "_target")

    def __init__(self, writer: WalWriter, target: int) -> None:
        self._writer = writer
        self._target = target

    @property
    def durable(self) -> bool:
        """True once an fsync covers the record (no blocking)."""
        if not self._writer.sync:
            return True
        return self._writer.synced_bytes >= self._target

    def wait(self) -> None:
        """Block until the record is durable, driving the fsync if needed.

        Raises :class:`PersistenceError` when the writer was poisoned by a
        failed fsync — the record's durability can no longer be promised.
        """
        if self._writer.sync:
            self._writer._await_durable(self._target)


class WriteAheadLog:
    """The service-facing WAL: an active segment plus rotation at checkpoint.

    Thread-safe for concurrent :meth:`append` (group commit happens inside
    the active :class:`WalWriter`); :meth:`rotate` and :meth:`close` must
    only run while no append is in flight — the service guarantees that by
    draining in-flight ingests under its checkpoint barrier.
    """

    def __init__(
        self,
        layout,
        segment_id: int,
        sync: bool = True,
        truncate_to: int | None = None,
        sync_interval: float = 0.0,
        on_fsync: Callable[[int], None] | None = None,
    ) -> None:
        self._layout = layout
        self.sync = sync
        self.sync_interval = sync_interval
        self.segment_id = segment_id
        self._on_fsync_user = on_fsync
        self._stats_lock = threading.Lock()
        self.records_appended = 0
        self.fsyncs_performed = 0
        self.records_synced = 0
        self.max_batch_records = 0
        self._writer = WalWriter(
            layout.wal_path(segment_id),
            sync=sync,
            truncate_to=truncate_to,
            sync_interval=sync_interval,
            on_fsync=self._record_fsync,
        )
        # make the segment's dirent durable, not just its contents — a lost
        # dirent after a crash would strand fsynced records in limbo
        _fsync_dir(layout.wal_dir)

    @property
    def active_path(self) -> Path:
        """Path of the segment currently being appended to."""
        return self._writer.path

    @property
    def active_bytes(self) -> int:
        """Byte size of the active segment."""
        return self._writer.size_bytes

    @property
    def fsyncs_saved(self) -> int:
        """Records made durable minus fsyncs performed (the group-commit win)."""
        return self.records_synced - self.fsyncs_performed

    def durable_position(self) -> WalPosition:
        """The durable end of the log: active segment + fsynced prefix length.

        Everything at or before this position survives a crash; it is the
        honest value for replication offset tokens.  With ``sync=False``
        durability is already best-effort, so the flushed size stands in.
        Safe against a concurrent :meth:`rotate` (shipper threads read this
        while checkpoints rotate): the segment id and writer are read under
        the same lock rotation updates them under, so the offset always
        belongs to the reported segment.
        """
        with self._stats_lock:
            segment_id = self.segment_id
            writer = self._writer
        return WalPosition(
            segment_id, writer.synced_bytes if self.sync else writer.size_bytes
        )

    def _record_fsync(self, batch: int) -> None:
        """Account one fsync that committed *batch* records; forward to the user."""
        with self._stats_lock:
            self.fsyncs_performed += 1
            self.records_synced += batch
            self.max_batch_records = max(self.max_batch_records, batch)
        if self._on_fsync_user is not None:
            self._on_fsync_user(batch)

    def append(self, record: WalRecord, trace: Span | None = None) -> int:
        """Append one record to the active segment; returns the frame size.

        Safe to call from many threads at once; returns only when the
        record is durable (see :meth:`WalWriter.append`).  ``trace`` is
        forwarded to the writer for ``wal_append``/``fsync_wait`` spans.
        """
        appended = self._writer.append(record, trace=trace)
        with self._stats_lock:
            self.records_appended += 1
        return appended

    def append_pipelined(
        self, record: WalRecord, trace: Span | None = None
    ) -> tuple[int, CommitTicket]:
        """Append without waiting for the fsync; returns ``(bytes, ticket)``.

        The pipelined-ack path (see :meth:`WalWriter.append_pipelined`):
        log order is fixed when this returns, durability arrives when the
        ticket is waited on (or any later group commit covers the frame).
        """
        appended, ticket = self._writer.append_pipelined(record, trace=trace)
        with self._stats_lock:
            self.records_appended += 1
        return appended, ticket

    def flush_durable(self) -> WalPosition:
        """Make every record appended before this call durable.

        Drives a group commit over the active segment's buffered tail
        (records from already-rotated segments were fsynced when their
        segment sealed) and returns the durable end of the log.
        """
        with self._stats_lock:
            writer = self._writer
        writer.flush()
        return self.durable_position()

    def rotate(self) -> int:
        """Close the active segment and open the next one.

        Returns the id of the segment that was just sealed — the checkpoint
        id whose snapshot covers every record up to this point.  Callers
        must ensure no append is in flight.
        """
        sealed = self.segment_id
        self._writer.close()
        successor = WalWriter(
            self._layout.wal_path(sealed + 1),
            sync=self.sync,
            sync_interval=self.sync_interval,
            on_fsync=self._record_fsync,
        )
        with self._stats_lock:  # paired with durable_position's read
            self.segment_id = sealed + 1
            self._writer = successor
        _fsync_dir(self._layout.wal_dir)
        return sealed

    def close(self) -> None:
        """Flush and close the active segment."""
        self._writer.close()
