"""The on-disk layout of a durable KOKO service directory.

One service maps to one directory::

    <root>/
      CURRENT                     # id of the latest durable checkpoint
      snapshots/
        ckpt-0000000002/          # one versioned snapshot per checkpoint
          manifest.json           # layout version, config, counters, digests
          corpus-0.pkl            # shard 0's annotated documents (pickle)
          indexes-0.db            # shard 0's W/E/PL/POS relations (Database)
          ...
      wal/
        wal-0000000003.log        # operations since checkpoint 2

Checkpoint ids are monotonically increasing.  Snapshot ``ckpt-N`` contains
every operation recorded in WAL segments ``1..N``; after it becomes durable
the active segment is ``N+1`` and segments ``<= N`` are garbage.  The
``CURRENT`` pointer is updated with an atomic rename *after* the snapshot
directory is fully written and fsynced, so a crash at any point leaves
either the old or the new checkpoint referenced — never a torn one.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["LAYOUT_VERSION", "StorageLayout", "fsync_dir", "fsync_file"]

#: bump when the snapshot or WAL format changes incompatibly
LAYOUT_VERSION = 1

SNAPSHOT_PREFIX = "ckpt-"
WAL_PREFIX = "wal-"
WAL_SUFFIX = ".log"


def fsync_file(path: Path) -> None:
    """fsync one file by path (used after whole-file writes)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: Path) -> None:
    """fsync a directory so renames/creations inside it are durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class StorageLayout:
    """Path arithmetic + atomic pointer updates for one service directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # directories
    # ------------------------------------------------------------------
    @property
    def snapshots_dir(self) -> Path:
        """Directory holding one ``ckpt-N`` subdirectory per snapshot."""
        return self.root / "snapshots"

    @property
    def wal_dir(self) -> Path:
        """Directory holding the ``wal-N.log`` segments."""
        return self.root / "wal"

    @property
    def current_file(self) -> Path:
        """The ``CURRENT`` pointer file (latest durable checkpoint id)."""
        return self.root / "CURRENT"

    def initialise(self) -> None:
        """Create the directory skeleton (idempotent)."""
        self.snapshots_dir.mkdir(parents=True, exist_ok=True)
        self.wal_dir.mkdir(parents=True, exist_ok=True)

    def exists(self) -> bool:
        """True when *root* already holds a service layout."""
        return self.snapshots_dir.is_dir() or self.wal_dir.is_dir()

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot_dir(self, checkpoint_id: int) -> Path:
        """The snapshot directory of checkpoint *checkpoint_id*."""
        return self.snapshots_dir / f"{SNAPSHOT_PREFIX}{checkpoint_id:010d}"

    def snapshot_ids(self) -> list[int]:
        """All snapshot ids present on disk (ascending; temp dirs excluded)."""
        found = []
        if self.snapshots_dir.is_dir():
            for entry in self.snapshots_dir.iterdir():
                name = entry.name
                if name.startswith(SNAPSHOT_PREFIX) and not name.endswith(".tmp"):
                    try:
                        found.append(int(name[len(SNAPSHOT_PREFIX):]))
                    except ValueError:
                        continue
        return sorted(found)

    # ------------------------------------------------------------------
    # WAL segments
    # ------------------------------------------------------------------
    def wal_path(self, segment_id: int) -> Path:
        """The file path of WAL segment *segment_id*."""
        return self.wal_dir / f"{WAL_PREFIX}{segment_id:010d}{WAL_SUFFIX}"

    def wal_segment_ids(self) -> list[int]:
        """All WAL segment ids present on disk (ascending)."""
        found = []
        if self.wal_dir.is_dir():
            for entry in self.wal_dir.iterdir():
                name = entry.name
                if name.startswith(WAL_PREFIX) and name.endswith(WAL_SUFFIX):
                    try:
                        found.append(int(name[len(WAL_PREFIX):-len(WAL_SUFFIX)]))
                    except ValueError:
                        continue
        return sorted(found)

    # ------------------------------------------------------------------
    # CURRENT pointer
    # ------------------------------------------------------------------
    def read_current(self) -> int | None:
        """The checkpoint id ``CURRENT`` references, or None when unset/bad."""
        try:
            return int(self.current_file.read_text(encoding="utf-8").strip())
        except (FileNotFoundError, ValueError):
            return None

    def write_current(self, checkpoint_id: int) -> None:
        """Atomically repoint ``CURRENT`` at *checkpoint_id* (write + rename)."""
        tmp = self.current_file.with_suffix(".tmp")
        tmp.write_text(f"{checkpoint_id}\n", encoding="utf-8")
        fsync_file(tmp)
        os.replace(tmp, self.current_file)
        fsync_dir(self.root)

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def prune(self, keep_checkpoint_id: int, wal_keep_from: int | None = None) -> None:
        """Delete snapshots and WAL segments superseded by a durable checkpoint.

        Keeps snapshot ``keep_checkpoint_id`` **and its predecessor**, plus
        every WAL segment the predecessor needs to roll forward — so if the
        newest snapshot is later found corrupt (bit rot, crash mid-write),
        recovery falls back one checkpoint and replays the retained log
        instead of losing data.  Everything older is unreferenced once
        ``CURRENT`` points at the new checkpoint.

        ``wal_keep_from`` additionally retains every WAL segment with id
        ``>= wal_keep_from`` regardless of checkpoint coverage — the
        retention pin log shipping uses so a follower tailing segment *N*
        never has it folded away mid-read (see
        ``KokoService.register_wal_pin``).
        """
        import shutil

        retained = [s for s in self.snapshot_ids() if s <= keep_checkpoint_id][-2:]
        oldest_retained = min(retained, default=keep_checkpoint_id)
        for snapshot_id in self.snapshot_ids():
            if snapshot_id < keep_checkpoint_id and snapshot_id not in retained:
                shutil.rmtree(self.snapshot_dir(snapshot_id), ignore_errors=True)
        for segment_id in self.wal_segment_ids():
            if segment_id <= oldest_retained and (
                wal_keep_from is None or segment_id < wal_keep_from
            ):
                try:
                    self.wal_path(segment_id).unlink()
                except OSError:  # pragma: no cover - best-effort GC
                    pass
