"""Posting quintuples and posting-list algebra (Sections 3.1 and 4.2.2).

Every KOKO index stores, for each indexed key, a list of quintuples
``(x, y, u-v, d)``:

* ``x``   — sentence id,
* ``y``   — token id of the indexed token in that sentence,
* ``u-v`` — first and last token id of the subtree rooted at the token,
* ``d``   — depth of the token in the dependency tree.

The module also implements the join operations the paper defines over
posting lists:

* :func:`join_ancestor` — the "word path" join of Section 4.2.2, keeping
  descendants whose ancestor appears in the other list with the required
  minimum depth gap,
* :func:`join_same_token` — the PL ⋈ POS join, which keeps quintuples that
  refer to the very same token,
* :func:`parent_of` — the parent test given in Example 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..nlp.types import Sentence


@dataclass(frozen=True, order=True)
class Posting:
    """One ``(x, y, u-v, d)`` quintuple, optionally annotated with its word.

    Comparisons (and hashing) cover the positional quintuple only: ``word``
    is a display annotation whose surface case varies by provenance
    (original token text vs. the lower-cased key of a restored ``W``
    relation), and sort order or merge tie-breaks must not depend on it.
    """

    sid: int
    tid: int
    left: int
    right: int
    depth: int
    word: str = field(default="", compare=False)

    def covers(self, other: "Posting") -> bool:
        """True when *other*'s token lies within this posting's subtree."""
        return (
            self.sid == other.sid
            and self.left <= other.left
            and other.right <= self.right
        )


def posting_for_token(sentence: Sentence, tid: int) -> Posting:
    """Build the quintuple for token *tid* of *sentence*."""
    left, right = sentence.subtree_span(tid)
    return Posting(
        sid=sentence.sid,
        tid=tid,
        left=left,
        right=right,
        depth=sentence.depth(tid),
        word=sentence[tid].text,
    )


def parent_of(parent: Posting, child: Posting) -> bool:
    """The parent test of Example 3.2.

    ``tp`` is the parent of ``tc`` iff they are in the same sentence, the
    child's subtree is contained in the parent's, and the child is exactly
    one level deeper.
    """
    return (
        parent.sid == child.sid
        and parent.left <= child.left
        and parent.right >= child.right
        and parent.depth == child.depth - 1
    )


def ancestor_of(ancestor: Posting, descendant: Posting, min_gap: int = 1) -> bool:
    """True when *ancestor* dominates *descendant* at least *min_gap* levels up."""
    return (
        ancestor.sid == descendant.sid
        and ancestor.left <= descendant.left
        and ancestor.right >= descendant.right
        and descendant.depth >= ancestor.depth + min_gap
    )


def union(lists: Iterable[list[Posting]]) -> list[Posting]:
    """Union of several posting lists, de-duplicated and sorted."""
    seen: set[tuple[int, int]] = set()
    merged: list[Posting] = []
    for postings in lists:
        for posting in postings:
            key = (posting.sid, posting.tid)
            if key not in seen:
                seen.add(key)
                merged.append(posting)
    merged.sort()
    return merged


def join_ancestor(
    ancestors: list[Posting], descendants: list[Posting], min_gap: int = 1
) -> list[Posting]:
    """Keep descendants that have a qualifying ancestor (Section 4.2.2).

    Returns the *descendant* quintuples, which is what the word-path join
    propagates down the path.
    """
    by_sentence: dict[int, list[Posting]] = {}
    for anc in ancestors:
        by_sentence.setdefault(anc.sid, []).append(anc)
    result = []
    for desc in descendants:
        for anc in by_sentence.get(desc.sid, ()):
            if ancestor_of(anc, desc, min_gap=min_gap):
                result.append(desc)
                break
    return result


def join_descendant(
    descendants: list[Posting], ancestors: list[Posting], min_gap: int = 1
) -> list[Posting]:
    """Keep ancestors that dominate at least one qualifying descendant."""
    by_sentence: dict[int, list[Posting]] = {}
    for desc in descendants:
        by_sentence.setdefault(desc.sid, []).append(desc)
    result = []
    for anc in ancestors:
        for desc in by_sentence.get(anc.sid, ()):
            if ancestor_of(anc, desc, min_gap=min_gap):
                result.append(anc)
                break
    return result


def join_same_token(left: list[Posting], right: list[Posting]) -> list[Posting]:
    """Keep quintuples present (same sentence id and token id) in both lists."""
    keys = {(p.sid, p.tid) for p in right}
    return [p for p in left if (p.sid, p.tid) in keys]


def sentences_of(postings: Iterable[Posting]) -> set[int]:
    """The set of sentence ids mentioned by a posting list."""
    return {p.sid for p in postings}
