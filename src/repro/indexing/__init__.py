"""KOKO's multi-indexing scheme and the baseline index designs."""

from .decompose import DecomposedPath, decompose_path, lookup_decomposed
from .entity_index import EntityIndex, EntityPosting
from .exact import (
    count_extractions,
    match_path_in_sentence,
    matching_sentences,
    sentence_matches_query,
)
from .hierarchy import HierarchyIndex, HierarchyNode, parse_label_index, pos_tag_index
from .koko_index import IndexStatistics, KokoIndexSet
from .sharding import ShardedIndexSet, shard_of
from .postings import (
    Posting,
    ancestor_of,
    join_ancestor,
    join_descendant,
    join_same_token,
    parent_of,
    posting_for_token,
    union,
)
from .query_ir import (
    CHILD,
    DESCENDANT,
    KIND_ANY,
    KIND_PARSE_LABEL,
    KIND_POS,
    KIND_WORD,
    TreePath,
    TreePatternQuery,
    TreeStep,
    path,
    step,
)
from .word_index import WordIndex

__all__ = [
    "CHILD",
    "DESCENDANT",
    "DecomposedPath",
    "EntityIndex",
    "EntityPosting",
    "HierarchyIndex",
    "HierarchyNode",
    "IndexStatistics",
    "KIND_ANY",
    "KIND_PARSE_LABEL",
    "KIND_POS",
    "KIND_WORD",
    "KokoIndexSet",
    "Posting",
    "ShardedIndexSet",
    "TreePath",
    "TreePatternQuery",
    "TreeStep",
    "WordIndex",
    "ancestor_of",
    "count_extractions",
    "decompose_path",
    "join_ancestor",
    "join_descendant",
    "join_same_token",
    "lookup_decomposed",
    "match_path_in_sentence",
    "matching_sentences",
    "parent_of",
    "parse_label_index",
    "path",
    "pos_tag_index",
    "posting_for_token",
    "sentence_matches_query",
    "shard_of",
    "step",
    "union",
]
