"""Hierarchy (dataguide) indexes over parse labels and POS tags (Section 3.2).

A hierarchy index is built by merging the dependency trees of every sentence
on one annotation layer: starting from a dummy node above all roots,
children with the same label are merged recursively, so every node of the
index is identified by the unique label path from the root, and carries the
posting list of all sentence tokens reachable through that path.

Two instances are built by :class:`~repro.indexing.koko_index.KokoIndexSet`:
the **PL index** (parse labels — its single top child is ``root``) and the
**POS index** (POS tags, merged under the dummy node as the paper describes).

The index answers *path-pattern* lookups — patterns with ``/`` (child) and
``//`` (descendant) axes and ``*`` wildcards — by walking the merged trie,
which is how the DPLI module resolves decomposed parse-label and POS-tag
paths without touching individual sentences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from ..nlp.types import Corpus, Sentence
from ..storage.closure import ClosureTable
from ..storage.database import Database
from .postings import Posting, posting_for_token


@dataclass
class HierarchyNode:
    """One node of the merged hierarchy: a label, children by label, postings."""

    node_id: int
    label: str
    depth: int
    parent: "HierarchyNode | None" = None
    children: dict[str, "HierarchyNode"] = field(default_factory=dict)
    postings: list[Posting] = field(default_factory=list)

    def path(self) -> str:
        """The unique ``/label/...`` path identifying this node (dummy excluded)."""
        labels: list[str] = []
        node: HierarchyNode | None = self
        while node is not None and node.parent is not None:
            labels.append(node.label)
            node = node.parent
        return "/" + "/".join(reversed(labels)) if labels else "/"


class HierarchyIndex:
    """A dataguide-style merged representation of all dependency trees.

    Parameters
    ----------
    label_of:
        Function mapping a token to the label used for merging — the parse
        label for the PL index, the POS tag for the POS index.
    name:
        Diagnostic name ("PL" or "POS").
    """

    def __init__(self, label_of: Callable, name: str = "PL") -> None:
        self.name = name
        self._label_of = label_of
        self._next_id = 0
        self._dummy = self._new_node("<dummy>", depth=-1, parent=None)
        # node id -> node; insertion order is creation order, which is
        # topological (parents are always created before their children) —
        # the property to_closure_table relies on.  A dict (not a list) so
        # that remove_sentence can prune emptied nodes without invalidating
        # the ids of the survivors.
        self._nodes: dict[int, HierarchyNode] = {self._dummy.node_id: self._dummy}
        # (sid, tid) -> node id; consumed by WordIndex.set_node_ids
        self._token_nodes: dict[tuple[int, int], int] = {}
        self._merged_token_count = 0

    def _new_node(self, label: str, depth: int, parent: HierarchyNode | None) -> HierarchyNode:
        node = HierarchyNode(node_id=self._next_id, label=label, depth=depth, parent=parent)
        self._next_id += 1
        return node

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_sentence(self, sentence: Sentence) -> None:
        """Merge the dependency tree of *sentence* into the index."""
        if len(sentence) == 0:
            return
        root = sentence.root_index()
        self._insert(sentence, root, self._dummy)

    def _insert(self, sentence: Sentence, tid: int, parent: HierarchyNode) -> None:
        label = str(self._label_of(sentence[tid]))
        child = parent.children.get(label)
        if child is None:
            child = self._new_node(label, depth=parent.depth + 1, parent=parent)
            parent.children[label] = child
            self._nodes[child.node_id] = child
        child.postings.append(posting_for_token(sentence, tid))
        self._token_nodes[(sentence.sid, tid)] = child.node_id
        self._merged_token_count += 1
        for ctid in sentence.children(tid):
            self._insert(sentence, ctid, child)

    def add_corpus(self, corpus: Corpus) -> None:
        for _, sentence in corpus.all_sentences():
            self.add_sentence(sentence)

    def remove_sentence(self, sentence: Sentence) -> None:
        """Un-merge *sentence*: drop its postings, prune emptied nodes.

        Walks the same label paths :meth:`add_sentence` merged the sentence
        through; a node left with no postings and no children is removed so
        that node counts (and the compression ratio) track the live corpus.
        """
        if len(sentence) == 0:
            return
        root = sentence.root_index()
        self._remove(sentence, root, self._dummy)

    def _remove(self, sentence: Sentence, tid: int, parent: HierarchyNode) -> None:
        label = str(self._label_of(sentence[tid]))
        child = parent.children.get(label)
        if child is None:
            return  # this sentence was never merged through here
        for ctid in sentence.children(tid):
            self._remove(sentence, ctid, child)
        if self._token_nodes.pop((sentence.sid, tid), None) is not None:
            self._merged_token_count -= 1
        child.postings = [
            p for p in child.postings if not (p.sid == sentence.sid and p.tid == tid)
        ]
        if not child.postings and not child.children:
            del parent.children[label]
            del self._nodes[child.node_id]

    # ------------------------------------------------------------------
    # statistics (the >99.7% node-reduction claim of Section 3)
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of merged nodes (dummy excluded)."""
        return len(self._nodes) - 1

    @property
    def token_count(self) -> int:
        """Number of tokens merged into the index."""
        return self._merged_token_count

    def compression_ratio(self) -> float:
        """Fraction of nodes eliminated by merging (0 when nothing merged)."""
        if self._merged_token_count == 0:
            return 0.0
        return 1.0 - self.node_count / self._merged_token_count

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def node_id_of(self, sid: int, tid: int) -> int:
        """Hierarchy node id that token (sid, tid) was merged into (-1 if absent)."""
        return self._token_nodes.get((sid, tid), -1)

    def node_by_id(self, node_id: int) -> HierarchyNode:
        return self._nodes[node_id]

    def nodes(self) -> Iterator[HierarchyNode]:
        """All nodes except the dummy root."""
        return (node for node in self._nodes.values() if node is not self._dummy)

    def lookup_path(self, steps: list[tuple[str, str]]) -> list[Posting]:
        """Union of the posting lists of all nodes matching a path pattern.

        *steps* is a list of ``(axis, label)`` pairs where axis is ``"/"``
        (child) or ``"//"`` (descendant) and label is a node label or
        ``"*"``.  The pattern is anchored at the dummy node, i.e. the first
        step with axis ``"/"`` must match a top-level label (``root`` for
        the PL index).
        """
        matches = self.match_nodes(steps)
        merged: list[Posting] = []
        seen: set[tuple[int, int]] = set()
        for node in matches:
            for posting in node.postings:
                key = (posting.sid, posting.tid)
                if key not in seen:
                    seen.add(key)
                    merged.append(posting)
        merged.sort()
        return merged

    def match_nodes(self, steps: list[tuple[str, str]]) -> list[HierarchyNode]:
        """All hierarchy nodes whose root path matches the pattern *steps*."""
        frontier: set[int] = {self._dummy.node_id}
        for axis, label in steps:
            next_frontier: set[int] = set()
            for node_id in frontier:
                node = self._nodes[node_id]
                if axis == "/":
                    next_frontier.update(
                        child.node_id
                        for child in node.children.values()
                        if self._label_matches(child.label, label)
                    )
                else:  # descendant axis
                    for descendant in self._descendants(node):
                        if self._label_matches(descendant.label, label):
                            next_frontier.add(descendant.node_id)
            frontier = next_frontier
            if not frontier:
                return []
        return [self._nodes[nid] for nid in sorted(frontier)]

    def _descendants(self, node: HierarchyNode) -> Iterator[HierarchyNode]:
        stack = list(node.children.values())
        while stack:
            current = stack.pop()
            yield current
            stack.extend(current.children.values())

    @staticmethod
    def _label_matches(node_label: str, pattern_label: str) -> bool:
        if pattern_label == "*":
            return True
        return node_label.lower() == pattern_label.lower()

    # ------------------------------------------------------------------
    # materialisation (closure table of Section 6.2.1)
    # ------------------------------------------------------------------
    def to_closure_table(self) -> ClosureTable:
        """Export the merged hierarchy as a closure table."""
        closure = ClosureTable()
        # Insert in creation order, which is also topological (parents first).
        for node in self._nodes.values():
            if node is self._dummy:
                closure.add_node(node.node_id, node.label, None)
            else:
                parent_id = node.parent.node_id if node.parent else None
                closure.add_node(node.node_id, node.label, parent_id)
        return closure

    def to_table(self, database: Database, table_name: str, create_indexes: bool = True):
        """Materialise the closure table into the storage engine."""
        return self.to_closure_table().to_table(database, table_name, create_indexes)

    # ------------------------------------------------------------------
    # restoration (the from_database inverse used by snapshots)
    # ------------------------------------------------------------------
    def load_closure_table(self, database: Database, table_name: str) -> "HierarchyIndex":
        """Rebuild the merged node structure from a closure-table relation.

        The inverse of :meth:`to_table` for the *structure* of the index:
        node ids, labels, depths and parent/child links.  Postings and the
        token → node map are **not** stored in the closure table (Section
        6.2.1 recovers them by joining with ``W`` on ``plid``/``posid``);
        re-attach them with :meth:`attach_token` afterwards.  The index must
        be freshly constructed (nothing merged yet).
        """
        if self.node_count:
            raise ValueError(f"hierarchy index {self.name!r} is not empty")
        labels: dict[int, str] = {}
        depths: dict[int, int] = {}
        parents: dict[int, int] = {}
        for node_id, label, depth, ancestor_id, _alabel, ancestor_depth in database.table(
            table_name
        ):
            if node_id == ancestor_id:
                labels[node_id] = label
                depths[node_id] = depth
            elif ancestor_depth == depth - 1:
                parents[node_id] = ancestor_id
        # Creation order is ascending node id (parents precede children), so
        # rebuilding in id order reproduces the original _nodes iteration
        # order and keeps surviving ids stable.
        for node_id in sorted(labels):
            if node_id not in parents:  # the dummy root above all trees
                self._dummy.node_id = node_id
                self._nodes.clear()
                self._nodes[node_id] = self._dummy
                continue
            parent = self._nodes[parents[node_id]]
            node = HierarchyNode(
                node_id=node_id,
                label=labels[node_id],
                depth=depths[node_id] - 1,  # closure depth counts the dummy
                parent=parent,
            )
            parent.children[node.label] = node
            self._nodes[node_id] = node
        self._next_id = max(labels, default=-1) + 1
        return self

    def attach_token(self, node_id: int, posting: Posting) -> None:
        """Re-attach one token occurrence to its merged node (restore path)."""
        node = self._nodes[node_id]
        node.postings.append(posting)
        self._token_nodes[(posting.sid, posting.tid)] = node_id
        self._merged_token_count += 1

    def attach_tokens(self, entries: "Iterable[tuple[int, Posting]]") -> None:
        """Bulk :meth:`attach_token` — the hot loop of snapshot restore."""
        nodes = self._nodes
        token_nodes = self._token_nodes
        count = 0
        for node_id, posting in entries:
            nodes[node_id].postings.append(posting)
            token_nodes[(posting.sid, posting.tid)] = node_id
            count += 1
        self._merged_token_count += count


def parse_label_index() -> HierarchyIndex:
    """A hierarchy index keyed on dependency parse labels (the PL index)."""
    return HierarchyIndex(label_of=lambda token: token.label, name="PL")


def pos_tag_index() -> HierarchyIndex:
    """A hierarchy index keyed on POS tags (the POS index)."""
    return HierarchyIndex(label_of=lambda token: token.pos, name="POS")
