"""Hierarchy (dataguide) indexes over parse labels and POS tags (Section 3.2).

A hierarchy index is built by merging the dependency trees of every sentence
on one annotation layer: starting from a dummy node above all roots,
children with the same label are merged recursively, so every node of the
index is identified by the unique label path from the root, and carries the
posting list of all sentence tokens reachable through that path.

Two instances are built by :class:`~repro.indexing.koko_index.KokoIndexSet`:
the **PL index** (parse labels — its single top child is ``root``) and the
**POS index** (POS tags, merged under the dummy node as the paper describes).

The index answers *path-pattern* lookups — patterns with ``/`` (child) and
``//`` (descendant) axes and ``*`` wildcards — by walking the merged trie,
which is how the DPLI module resolves decomposed parse-label and POS-tag
paths without touching individual sentences.

With ``columnar=True`` the trie structure (nodes, labels, parent/child
links) is kept exactly as before, but the per-node posting lists move into
one :class:`~repro.indexing.columnar.ColumnarPostings` store keyed by node
id: the splice appends one row batch per sentence (an iterative DFS that
reproduces the recursive merge order, so node ids are identical to the
object-backed build), and path lookups gather whole column slices instead
of walking Python lists.  ``node.postings`` stays readable — columnar nodes
carry a lazy view over their store slice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from ..nlp.types import Corpus, Sentence
from ..storage.closure import ClosureTable
from ..storage.database import Database
from .columnar import ColumnarPostings, PostingBlock, StringInterner
from .postings import Posting, posting_for_token

_H_COLUMNS = ("sid", "tid", "left", "right", "depth", "wid")


@dataclass
class HierarchyNode:
    """One node of the merged hierarchy: a label, children by label, postings."""

    node_id: int
    label: str
    depth: int
    parent: "HierarchyNode | None" = None
    children: dict[str, "HierarchyNode"] = field(default_factory=dict)
    postings: list[Posting] = field(default_factory=list)

    def path(self) -> str:
        """The unique ``/label/...`` path identifying this node (dummy excluded)."""
        labels: list[str] = []
        node: HierarchyNode | None = self
        while node is not None and node.parent is not None:
            labels.append(node.label)
            node = node.parent
        return "/" + "/".join(reversed(labels)) if labels else "/"


class _NodePostingsView(Sequence):
    """Read-only live view of one columnar node's postings."""

    __slots__ = ("_store", "_node_id", "_interner")

    def __init__(
        self, store: ColumnarPostings, node_id: int, interner: StringInterner
    ) -> None:
        self._store = store
        self._node_id = node_id
        self._interner = interner

    def _materialize(self) -> list[Posting]:
        sid, tid, left, right, depth, wid = self._store.arrays_for_key(self._node_id)
        return PostingBlock(sid, tid, left, right, depth, wid, self._interner).materialize()

    def __len__(self) -> int:
        return self._store.key_count(self._node_id)

    def __iter__(self):
        return iter(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"_NodePostingsView(node={self._node_id}, {len(self)} postings)"


class HierarchyIndex:
    """A dataguide-style merged representation of all dependency trees.

    Parameters
    ----------
    label_of:
        Function mapping a token to the label used for merging — the parse
        label for the PL index, the POS tag for the POS index.
    name:
        Diagnostic name ("PL" or "POS").
    columnar:
        Store per-node postings in a shared columnar store instead of
        Python lists (the trie structure is identical either way).
    interner:
        Word interner shared with sibling columnar indexes; a private one
        is created when omitted.
    """

    def __init__(
        self,
        label_of: Callable,
        name: str = "PL",
        columnar: bool = False,
        interner: StringInterner | None = None,
    ) -> None:
        self.name = name
        self.columnar = columnar
        self._label_of = label_of
        self._next_id = 0
        # NOTE: an explicit None test — a fresh shared interner is empty and
        # therefore falsy, and falling back to a private one here would make
        # stored word ids undecodable.
        self._interner = (
            (interner if interner is not None else StringInterner())
            if columnar
            else None
        )
        self._store = (
            ColumnarPostings(_H_COLUMNS, identity_keys=True) if columnar else None
        )
        self._dummy = self._new_node("<dummy>", depth=-1, parent=None)
        # node id -> node; insertion order is creation order, which is
        # topological (parents are always created before their children) —
        # the property to_closure_table relies on.  A dict (not a list) so
        # that remove_sentence can prune emptied nodes without invalidating
        # the ids of the survivors.
        self._nodes: dict[int, HierarchyNode] = {self._dummy.node_id: self._dummy}
        # (sid, tid) -> node id; consumed by WordIndex.set_node_ids
        self._token_nodes: dict[tuple[int, int], int] = {}
        self._merged_token_count = 0
        # columnar (sid, tid) -> node id cache, rebuilt lazily after writes
        self._token_cache: dict[tuple[int, int], int] | None = None
        # (root, labels, structure) -> per-token node ids: two trees with
        # the same shape and label sequence merge through exactly the same
        # trie path, so the walk result can be reused verbatim.  Node
        # removal can prune trie nodes, so any removal clears the memo.
        self._merge_memo: dict[tuple, list[int]] = {}

    def _new_node(self, label: str, depth: int, parent: HierarchyNode | None) -> HierarchyNode:
        node = HierarchyNode(node_id=self._next_id, label=label, depth=depth, parent=parent)
        self._next_id += 1
        if self.columnar:
            node.postings = _NodePostingsView(self._store, node.node_id, self._interner)
        return node

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_sentence(self, sentence: Sentence) -> None:
        """Merge the dependency tree of *sentence* into the index."""
        if len(sentence) == 0:
            return
        root = sentence.root_index()
        if self.columnar:
            children, spans, depths = sentence.tree_columns()
            intern = self._interner.intern
            self.merge_sentence(
                sentence.sid,
                root,
                children,
                [str(self._label_of(token)) for token in sentence.tokens],
                [span[0] for span in spans],
                [span[1] for span in spans],
                depths,
                [intern(token.text) for token in sentence.tokens],
            )
            return
        self._insert(sentence, root, self._dummy)

    def merge_sentence(
        self,
        sid: int,
        root: int,
        children: "Sequence[Sequence[int]]",
        labels: list[str],
        lefts: list[int],
        rights: list[int],
        depths: list[int],
        wids: list[int],
    ) -> list[int]:
        """Columnar splice: merge one pre-columnised dependency tree.

        The trie walk visits tokens in exactly the order the recursive
        object-backed merge does, so newly created node ids are identical
        across backends; rows are appended in token order (per-node posting
        order is not contractual — every consumer sorts).  Returns the
        per-token node ids (``-1`` for tokens unreachable from *root*).
        """
        node_ids = self.merge_tree(root, children, labels)
        n = len(node_ids)
        if -1 in node_ids:
            reachable = [t for t in range(n) if node_ids[t] != -1]
            kids = [node_ids[t] for t in reachable]
            columns = (
                [sid] * len(reachable),
                reachable,
                [lefts[t] for t in reachable],
                [rights[t] for t in reachable],
                [depths[t] for t in reachable],
                [wids[t] for t in reachable],
            )
        else:
            kids = node_ids
            columns = ([sid] * n, range(n), lefts, rights, depths, wids)
        self.append_rows(kids, columns)
        return node_ids

    def merge_tree(
        self,
        root: int,
        children: "Sequence[Sequence[int]]",
        labels: list[str],
    ) -> list[int]:
        """Merge one tree shape into the trie; per-token node ids, no rows.

        Identically shaped trees (same *root*, *labels*, *children*) merge
        through the same trie path, so the walk is memoised — the dataguide
        exists because parse shapes repeat, and the memo turns that
        repetition into one dict hit per sentence.  Callers must treat the
        returned list as read-only (memo hits share it).
        """
        structure = (
            children if isinstance(children, tuple) else tuple(map(tuple, children))
        )
        key = (root, tuple(labels), structure)
        node_ids = self._merge_memo.get(key)
        if node_ids is not None:
            return node_ids
        node_ids = [-1] * len(labels)
        nodes = self._nodes
        stack = [(root, self._dummy)]
        while stack:
            tid, parent = stack.pop()
            label = labels[tid]
            child = parent.children.get(label)
            if child is None:
                child = self._new_node(label, depth=parent.depth + 1, parent=parent)
                parent.children[label] = child
                nodes[child.node_id] = child
            node_ids[tid] = child.node_id
            ctids = children[tid]
            for index in range(len(ctids) - 1, -1, -1):
                stack.append((ctids[index], child))
        self._merge_memo[key] = node_ids
        return node_ids

    def append_rows(
        self, kids: Sequence[int], columns: Sequence[Sequence[int]]
    ) -> None:
        """Columnar splice: append posting rows keyed by node id.

        Covers every node id minted so far (batch writers mint ids through
        :meth:`merge_tree` before flushing rows here).
        """
        store = self._store
        assert store is not None, "append_rows requires columnar=True"
        store.ensure_key_capacity(self._next_id)
        store.append_batch(kids, columns)
        self._token_cache = None

    def _insert(self, sentence: Sentence, tid: int, parent: HierarchyNode) -> None:
        label = str(self._label_of(sentence[tid]))
        child = parent.children.get(label)
        if child is None:
            child = self._new_node(label, depth=parent.depth + 1, parent=parent)
            parent.children[label] = child
            self._nodes[child.node_id] = child
        child.postings.append(posting_for_token(sentence, tid))
        self._token_nodes[(sentence.sid, tid)] = child.node_id
        self._merged_token_count += 1
        for ctid in sentence.children(tid):
            self._insert(sentence, ctid, child)

    def add_corpus(self, corpus: Corpus) -> None:
        for _, sentence in corpus.all_sentences():
            self.add_sentence(sentence)

    def remove_sentence(self, sentence: Sentence) -> None:
        """Un-merge *sentence*: drop its postings, prune emptied nodes.

        Walks the same label paths :meth:`add_sentence` merged the sentence
        through; a node left with no postings and no children is removed so
        that node counts (and the compression ratio) track the live corpus.
        """
        if len(sentence) == 0:
            return
        root = sentence.root_index()
        if self.columnar:
            self._store.remove_sid(sentence.sid)
            self._token_cache = None
            self._merge_memo.clear()  # pruning may invalidate memoised ids
            self._remove_structural(sentence, root, self._dummy)
            return
        self._remove(sentence, root, self._dummy)

    def _remove(self, sentence: Sentence, tid: int, parent: HierarchyNode) -> None:
        label = str(self._label_of(sentence[tid]))
        child = parent.children.get(label)
        if child is None:
            return  # this sentence was never merged through here
        for ctid in sentence.children(tid):
            self._remove(sentence, ctid, child)
        if self._token_nodes.pop((sentence.sid, tid), None) is not None:
            self._merged_token_count -= 1
        child.postings = [
            p for p in child.postings if not (p.sid == sentence.sid and p.tid == tid)
        ]
        if not child.postings and not child.children:
            del parent.children[label]
            del self._nodes[child.node_id]

    def _remove_structural(
        self, sentence: Sentence, tid: int, parent: HierarchyNode
    ) -> None:
        """Columnar prune: drop trie nodes left with no rows and no children."""
        label = str(self._label_of(sentence[tid]))
        child = parent.children.get(label)
        if child is None:
            return
        for ctid in sentence.children(tid):
            self._remove_structural(sentence, ctid, child)
        if not child.children and self._store.key_count(child.node_id) == 0:
            del parent.children[label]
            del self._nodes[child.node_id]

    # ------------------------------------------------------------------
    # statistics (the >99.7% node-reduction claim of Section 3)
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of merged nodes (dummy excluded)."""
        return len(self._nodes) - 1

    @property
    def token_count(self) -> int:
        """Number of tokens merged into the index."""
        if self.columnar:
            return self._store.total_rows
        return self._merged_token_count

    def compression_ratio(self) -> float:
        """Fraction of nodes eliminated by merging (0 when nothing merged)."""
        tokens = self.token_count
        if tokens == 0:
            return 0.0
        return 1.0 - self.node_count / tokens

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def node_id_of(self, sid: int, tid: int) -> int:
        """Hierarchy node id that token (sid, tid) was merged into (-1 if absent)."""
        if not self.columnar:
            return self._token_nodes.get((sid, tid), -1)
        cache = self._token_cache
        if cache is None:
            kid, cols = self._store.all_arrays_with_keys()
            cache = {
                (s, t): k
                for s, t, k in zip(cols[0].tolist(), cols[1].tolist(), kid.tolist())
            }
            self._token_cache = cache
        return cache.get((sid, tid), -1)

    def node_by_id(self, node_id: int) -> HierarchyNode:
        return self._nodes[node_id]

    def nodes(self) -> Iterator[HierarchyNode]:
        """All nodes except the dummy root."""
        return (node for node in self._nodes.values() if node is not self._dummy)

    def lookup_path(self, steps: list[tuple[str, str]]) -> list[Posting]:
        """Union of the posting lists of all nodes matching a path pattern.

        *steps* is a list of ``(axis, label)`` pairs where axis is ``"/"``
        (child) or ``"//"`` (descendant) and label is a node label or
        ``"*"``.  The pattern is anchored at the dummy node, i.e. the first
        step with axis ``"/"`` must match a top-level label (``root`` for
        the PL index).
        """
        if self.columnar:
            return self.lookup_path_block(steps).materialize()
        matches = self.match_nodes(steps)
        merged: list[Posting] = []
        seen: set[tuple[int, int]] = set()
        for node in matches:
            for posting in node.postings:
                key = (posting.sid, posting.tid)
                if key not in seen:
                    seen.add(key)
                    merged.append(posting)
        merged.sort()
        return merged

    def lookup_path_block(self, steps: list[tuple[str, str]]) -> PostingBlock:
        """Columnar :meth:`lookup_path`: the union as a sorted posting block.

        Every token merges into exactly one node, so the per-node slices are
        disjoint and their concatenation needs no deduplication — one gather
        plus one ``(sid, tid)`` sort replaces the object-backed merge loop.
        """
        store = self._store
        assert store is not None, "lookup_path_block requires columnar=True"
        matches = self.match_nodes(steps)
        if not matches:
            return PostingBlock.empty()
        sid, tid, left, right, depth, wid = store.arrays_for_keys(
            [node.node_id for node in matches]
        )
        return PostingBlock(
            sid, tid, left, right, depth, wid, self._interner
        ).sort_positional()

    def match_nodes(self, steps: list[tuple[str, str]]) -> list[HierarchyNode]:
        """All hierarchy nodes whose root path matches the pattern *steps*."""
        frontier: set[int] = {self._dummy.node_id}
        for axis, label in steps:
            next_frontier: set[int] = set()
            for node_id in frontier:
                node = self._nodes[node_id]
                if axis == "/":
                    next_frontier.update(
                        child.node_id
                        for child in node.children.values()
                        if self._label_matches(child.label, label)
                    )
                else:  # descendant axis
                    for descendant in self._descendants(node):
                        if self._label_matches(descendant.label, label):
                            next_frontier.add(descendant.node_id)
            frontier = next_frontier
            if not frontier:
                return []
        return [self._nodes[nid] for nid in sorted(frontier)]

    def _descendants(self, node: HierarchyNode) -> Iterator[HierarchyNode]:
        stack = list(node.children.values())
        while stack:
            current = stack.pop()
            yield current
            stack.extend(current.children.values())

    @staticmethod
    def _label_matches(node_label: str, pattern_label: str) -> bool:
        if pattern_label == "*":
            return True
        return node_label.lower() == pattern_label.lower()

    # ------------------------------------------------------------------
    # conversion (object-backed -> columnar, used on snapshot restore)
    # ------------------------------------------------------------------
    def convert_to_columnar(self, interner: StringInterner) -> "HierarchyIndex":
        """Move the per-node posting lists into a columnar store, in place.

        The trie (node ids, labels, links) is untouched, so closure tables,
        ``node_by_id`` and path lookups are unaffected; each node's
        ``postings`` list is replaced by a live view of its store slice.
        """
        assert not self.columnar, f"hierarchy index {self.name!r} is already columnar"
        store = ColumnarPostings(_H_COLUMNS, identity_keys=True)
        store.ensure_key_capacity(self._next_id)
        kids: list[int] = []
        columns: tuple[list[int], ...] = tuple([] for _ in _H_COLUMNS)
        sids, tids, lefts, rights, depths, wids = columns
        for node in self._nodes.values():
            if node is not self._dummy:
                for p in node.postings:
                    kids.append(node.node_id)
                    sids.append(p.sid)
                    tids.append(p.tid)
                    lefts.append(p.left)
                    rights.append(p.right)
                    depths.append(p.depth)
                    wids.append(interner.intern(p.word))
            node.postings = _NodePostingsView(store, node.node_id, interner)
        store.append_batch(kids, columns)
        store.compact()
        self.columnar = True
        self._interner = interner
        self._store = store
        self._token_nodes = {}
        self._token_cache = None
        return self

    # ------------------------------------------------------------------
    # materialisation (closure table of Section 6.2.1)
    # ------------------------------------------------------------------
    def to_closure_table(self) -> ClosureTable:
        """Export the merged hierarchy as a closure table."""
        closure = ClosureTable()
        # Insert in creation order, which is also topological (parents first).
        for node in self._nodes.values():
            if node is self._dummy:
                closure.add_node(node.node_id, node.label, None)
            else:
                parent_id = node.parent.node_id if node.parent else None
                closure.add_node(node.node_id, node.label, parent_id)
        return closure

    def to_table(self, database: Database, table_name: str, create_indexes: bool = True):
        """Materialise the closure table into the storage engine."""
        return self.to_closure_table().to_table(database, table_name, create_indexes)

    # ------------------------------------------------------------------
    # restoration (the from_database inverse used by snapshots)
    # ------------------------------------------------------------------
    def load_closure_table(self, database: Database, table_name: str) -> "HierarchyIndex":
        """Rebuild the merged node structure from a closure-table relation.

        The inverse of :meth:`to_table` for the *structure* of the index:
        node ids, labels, depths and parent/child links.  Postings and the
        token → node map are **not** stored in the closure table (Section
        6.2.1 recovers them by joining with ``W`` on ``plid``/``posid``);
        re-attach them with :meth:`attach_token` afterwards.  The index must
        be freshly constructed (nothing merged yet).
        """
        if self.node_count:
            raise ValueError(f"hierarchy index {self.name!r} is not empty")
        labels: dict[int, str] = {}
        depths: dict[int, int] = {}
        parents: dict[int, int] = {}
        for node_id, label, depth, ancestor_id, _alabel, ancestor_depth in database.table(
            table_name
        ):
            if node_id == ancestor_id:
                labels[node_id] = label
                depths[node_id] = depth
            elif ancestor_depth == depth - 1:
                parents[node_id] = ancestor_id
        # Creation order is ascending node id (parents precede children), so
        # rebuilding in id order reproduces the original _nodes iteration
        # order and keeps surviving ids stable.
        for node_id in sorted(labels):
            if node_id not in parents:  # the dummy root above all trees
                self._dummy.node_id = node_id
                self._nodes.clear()
                self._nodes[node_id] = self._dummy
                continue
            parent = self._nodes[parents[node_id]]
            node = HierarchyNode(
                node_id=node_id,
                label=labels[node_id],
                depth=depths[node_id] - 1,  # closure depth counts the dummy
                parent=parent,
            )
            parent.children[node.label] = node
            self._nodes[node_id] = node
        self._next_id = max(labels, default=-1) + 1
        return self

    def attach_token(self, node_id: int, posting: Posting) -> None:
        """Re-attach one token occurrence to its merged node (restore path)."""
        node = self._nodes[node_id]
        node.postings.append(posting)
        self._token_nodes[(posting.sid, posting.tid)] = node_id
        self._merged_token_count += 1

    def attach_tokens(self, entries: "Iterable[tuple[int, Posting]]") -> None:
        """Bulk :meth:`attach_token` — the hot loop of snapshot restore."""
        nodes = self._nodes
        token_nodes = self._token_nodes
        count = 0
        for node_id, posting in entries:
            nodes[node_id].postings.append(posting)
            token_nodes[(posting.sid, posting.tid)] = node_id
            count += 1
        self._merged_token_count += count


def parse_label_index(
    columnar: bool = False, interner: StringInterner | None = None
) -> HierarchyIndex:
    """A hierarchy index keyed on dependency parse labels (the PL index)."""
    return HierarchyIndex(
        label_of=lambda token: token.label, name="PL", columnar=columnar, interner=interner
    )


def pos_tag_index(
    columnar: bool = False, interner: StringInterner | None = None
) -> HierarchyIndex:
    """A hierarchy index keyed on POS tags (the POS index)."""
    return HierarchyIndex(
        label_of=lambda token: token.pos, name="POS", columnar=columnar, interner=interner
    )
