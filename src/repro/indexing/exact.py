"""Exact tree-pattern matching against annotated sentences.

The index-effectiveness metric of Section 6.2.2 is the ratio of sentences
that truly contain bindings for all query variables to the sentences an
index returns.  The numerator needs an oracle that evaluates a tree-pattern
query exactly, independent of any index; that oracle lives here.  The KOKO
evaluator also uses it as the final validation step after index lookup
("these checks are necessary since ... the bindings obtained by evaluating
the indices with decomposed paths may still contain false answers").
"""

from __future__ import annotations

from ..nlp.types import Corpus, Sentence
from .query_ir import CHILD, TreePath, TreePatternQuery


def match_path_in_sentence(sentence: Sentence, tree_path: TreePath) -> list[int]:
    """Token indexes of *sentence* reachable through *tree_path* from the root.

    The first step is matched against the sentence root (child axis) or any
    token (descendant axis); each further step follows child or descendant
    edges of the dependency tree.
    """
    if len(sentence) == 0 or not tree_path.steps:
        return []
    root = sentence.root_index()

    first = tree_path.steps[0]
    if first.axis == CHILD:
        frontier = {root} if first.matches_token(sentence[root]) else set()
    else:
        frontier = {
            tok.index for tok in sentence if first.matches_token(tok)
        }

    for step in tree_path.steps[1:]:
        next_frontier: set[int] = set()
        for index in frontier:
            if step.axis == CHILD:
                candidates = sentence.children(index)
            else:
                candidates = [
                    i for i in sentence.subtree_indices(index) if i != index
                ]
            for candidate in candidates:
                if step.matches_token(sentence[candidate]):
                    next_frontier.add(candidate)
        frontier = next_frontier
        if not frontier:
            return []
    return sorted(frontier)


def sentence_matches_query(sentence: Sentence, query: TreePatternQuery) -> bool:
    """True when every path of *query* has at least one binding in *sentence*."""
    return all(match_path_in_sentence(sentence, p) for p in query.paths)


def matching_sentences(corpus: Corpus, query: TreePatternQuery) -> set[int]:
    """Sentence ids of *corpus* in which the query has bindings for all paths."""
    result: set[int] = set()
    for _, sentence in corpus.all_sentences():
        if sentence_matches_query(sentence, query):
            result.add(sentence.sid)
    return result


def count_extractions(corpus: Corpus, query: TreePatternQuery) -> int:
    """Total number of bindings of the query's *last* path across the corpus.

    Used by the "lookup time / effectiveness vs. number of extractions"
    series of Figures 7(c,d) and 8(c,d): queries are bucketed by how many
    tuples they return.
    """
    total = 0
    for _, sentence in corpus.all_sentences():
        if not sentence_matches_query(sentence, query):
            continue
        total += len(match_path_in_sentence(sentence, query.paths[-1]))
    return total
