"""A minimal structural-query IR shared by the index implementations.

The index-comparison experiments (Figures 7 and 8) run *tree-pattern
queries* — sets of root-anchored label paths over dependency trees — against
four different index designs.  To keep the baseline indexes independent of
the KOKO query language, the benchmark queries are expressed in this tiny
intermediate representation; the KOKO front end lowers its own path
expressions to the same IR before calling the DPLI module.

A :class:`TreeStep` is one path step: an axis (``/`` child or ``//``
descendant), a label, and the annotation layer the label refers to
(``label`` = parse label, ``pos`` = POS tag, ``word`` = surface token,
``any`` = wildcard).  A :class:`TreePatternQuery` is a set of absolute
root-anchored paths (tree patterns are normalised into their absolute
paths, exactly as KOKO's query normalisation does).
"""

from __future__ import annotations

from dataclasses import dataclass, field

CHILD = "/"
DESCENDANT = "//"

KIND_PARSE_LABEL = "label"
KIND_POS = "pos"
KIND_WORD = "word"
KIND_ANY = "any"

_VALID_KINDS = {KIND_PARSE_LABEL, KIND_POS, KIND_WORD, KIND_ANY}
_VALID_AXES = {CHILD, DESCENDANT}


@dataclass(frozen=True)
class TreeStep:
    """One step of a path: axis, label text, and the annotation layer."""

    axis: str
    label: str
    kind: str

    def __post_init__(self) -> None:
        if self.axis not in _VALID_AXES:
            raise ValueError(f"invalid axis {self.axis!r}")
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"invalid step kind {self.kind!r}")

    def matches_token(self, token) -> bool:
        """Does this step's label match *token* on the right annotation layer?"""
        if self.kind == KIND_ANY:
            return True
        if self.kind == KIND_PARSE_LABEL:
            return token.label.lower() == self.label.lower()
        if self.kind == KIND_POS:
            return token.pos.lower() == self.label.lower()
        return token.text.lower() == self.label.lower()

    def render(self) -> str:
        label = f'"{self.label}"' if self.kind == KIND_WORD else self.label
        return f"{self.axis}{label}"


@dataclass(frozen=True)
class TreePath:
    """A root-anchored sequence of steps."""

    steps: tuple[TreeStep, ...]

    def __len__(self) -> int:
        return len(self.steps)

    def render(self) -> str:
        return "".join(step.render() for step in self.steps)

    def labels_of_kind(self, kind: str) -> list[str]:
        return [step.label for step in self.steps if step.kind == kind]

    def has_wildcard(self) -> bool:
        return any(step.kind == KIND_ANY for step in self.steps)

    def has_descendant_axis(self) -> bool:
        return any(step.axis == DESCENDANT for step in self.steps)


@dataclass
class TreePatternQuery:
    """A tree-pattern query: one or more absolute paths plus a readable name."""

    name: str
    paths: list[TreePath] = field(default_factory=list)

    def render(self) -> str:
        return " AND ".join(path.render() for path in self.paths)

    @property
    def total_steps(self) -> int:
        return sum(len(path) for path in self.paths)

    def uses_words(self) -> bool:
        return any(
            step.kind == KIND_WORD for path in self.paths for step in path.steps
        )

    def uses_wildcards(self) -> bool:
        return any(path.has_wildcard() for path in self.paths)


def step(axis: str, label: str, kind: str) -> TreeStep:
    """Convenience constructor used by the benchmark generators and tests."""
    return TreeStep(axis=axis, label=label, kind=kind)


def path(*steps_: TreeStep) -> TreePath:
    """Convenience constructor for a :class:`TreePath`."""
    return TreePath(steps=tuple(steps_))
