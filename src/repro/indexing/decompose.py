"""Path decomposition (Section 4.2.1) at the tree-pattern IR level.

A (dominant) path ``#l1#...#lm`` is decomposed into up to three paths, one
per index:

* the **parse-label path**: every step whose label is not a parse label is
  replaced by ``*``,
* the **POS-tag path**: every step whose label is not a POS tag is replaced
  by ``*``,
* the **word path**: the sub-sequence of word-labelled steps (used to probe
  the word index and join on ancestor/descendant relationships).

This module performs the decomposition and the index lookups + joins of
Section 4.2.2 against a :class:`~repro.indexing.koko_index.KokoIndexSet`.
It is shared by the DPLI module of the KOKO engine and by the KOKO entry in
the index-comparison experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from .columnar import (
    PostingBlock,
    join_ancestor_block,
    join_same_token_block,
    under_words_block,
)
from .koko_index import KokoIndexSet
from .postings import Posting, join_ancestor, join_same_token
from .query_ir import (
    CHILD,
    DESCENDANT,
    KIND_ANY,
    KIND_PARSE_LABEL,
    KIND_POS,
    KIND_WORD,
    TreePath,
    TreePatternQuery,
    TreeStep,
)


@dataclass(frozen=True)
class DecomposedPath:
    """The three decomposed views of one path."""

    parse_label_path: TreePath
    pos_path: TreePath
    word_steps: tuple[tuple[str, int], ...]
    """Word steps as (word, minimum depth gap to the previous word step)."""


def decompose_path(path: TreePath) -> DecomposedPath:
    """Decompose *path* into parse-label, POS and word views."""
    pl_steps: list[TreeStep] = []
    pos_steps: list[TreeStep] = []
    word_steps: list[tuple[str, int]] = []
    gap_since_last_word = 0
    saw_word = False

    for step in path.steps:
        pl_label = step.label if step.kind == KIND_PARSE_LABEL else "*"
        pl_kind = KIND_PARSE_LABEL if step.kind == KIND_PARSE_LABEL else KIND_ANY
        pl_steps.append(TreeStep(axis=step.axis, label=pl_label, kind=pl_kind))

        pos_label = step.label if step.kind == KIND_POS else "*"
        pos_kind = KIND_POS if step.kind == KIND_POS else KIND_ANY
        pos_steps.append(TreeStep(axis=step.axis, label=pos_label, kind=pos_kind))

        gap_since_last_word += 1
        if step.kind == KIND_WORD:
            # The minimum depth gap between consecutive word-path entries is
            # the number of steps between them when all axes are child axes;
            # descendant axes only guarantee "at least that many" levels,
            # which is the same lower bound (Example 4.4: l2 >= l1 + 2).
            word_steps.append((step.label, gap_since_last_word if saw_word else 0))
            gap_since_last_word = 0
            saw_word = True

    return DecomposedPath(
        parse_label_path=TreePath(steps=tuple(pl_steps)),
        pos_path=TreePath(steps=tuple(pos_steps)),
        word_steps=tuple(word_steps),
    )


def is_trivial(path: TreePath) -> bool:
    """True for decomposed paths that constrain nothing (all-wildcard)."""
    return all(step.kind == KIND_ANY for step in path.steps)


def lookup_decomposed(
    indexes: KokoIndexSet, path: TreePath
) -> list[Posting]:
    """DPLI lookup of one path: decompose, access indexes, join (Section 4.2.2).

    Returns the candidate postings for the path's final step.  An empty list
    means the index proves there is no binding anywhere in the corpus.
    Columnar index sets take the vectorized block pipeline
    (:func:`lookup_decomposed_block`) and materialise the result.
    """
    if getattr(indexes, "columnar", False):
        return lookup_decomposed_block(indexes, path).materialize()
    decomposed = decompose_path(path)
    last_step = path.steps[-1]
    last_is_word = last_step.kind == KIND_WORD

    # P1 and P2: hierarchy-index lookups, joined on the same token.
    base: list[Posting] | None = None
    if not is_trivial(decomposed.parse_label_path):
        base = indexes.pl_index.lookup_path(
            [(s.axis, s.label) for s in decomposed.parse_label_path.steps]
        )
    if not is_trivial(decomposed.pos_path):
        pos_postings = indexes.pos_index.lookup_path(
            [(s.axis, s.label) for s in decomposed.pos_path.steps]
        )
        base = pos_postings if base is None else join_same_token(base, pos_postings)

    # Q: the word-path lookup (already ancestor-joined along the word chain).
    word_result = _lookup_word_path(indexes, decomposed.word_steps)

    if base is None and word_result is None:
        # The path constrains nothing (e.g. "//*"); every token qualifies,
        # which the hierarchy index can enumerate cheaply.
        return indexes.pl_index.lookup_path([(DESCENDANT, "*")])

    # Join of P and Q (the two cases of Section 4.2.2): when the last path
    # element is a word, P and Q must refer to the very same token; when it
    # is not, the quintuples of Q are ancestors of the final token, so the
    # candidates are the P tokens dominated by (or equal to) a Q token.
    if base is None:
        if last_is_word:
            return sorted(word_result or [])
        candidates = indexes.pl_index.lookup_path([(DESCENDANT, "*")])
        return sorted(_under_words(candidates, word_result or []))

    result = base
    if word_result is not None:
        if last_is_word:
            result = join_same_token(result, word_result)
        else:
            result = _under_words(result, word_result)
    return sorted(result)


def _under_words(candidates: list[Posting], words: list[Posting]) -> list[Posting]:
    """Candidates whose token lies in the subtree of (or is) a word posting."""
    by_sentence: dict[int, list[Posting]] = {}
    for word in words:
        by_sentence.setdefault(word.sid, []).append(word)
    kept = []
    for posting in candidates:
        for word in by_sentence.get(posting.sid, ()):
            same_token = word.tid == posting.tid
            dominated = word.left <= posting.left and posting.right <= word.right
            if same_token or dominated:
                kept.append(posting)
                break
    return kept


def _lookup_word_path(
    indexes: KokoIndexSet, word_steps: tuple[tuple[str, int], ...]
) -> list[Posting] | None:
    """Look up and join the word path; None when the path has no word steps."""
    if not word_steps:
        return None
    word, _ = word_steps[0]
    current = indexes.word_index.lookup(word)
    for word, gap in word_steps[1:]:
        nxt = indexes.word_index.lookup(word)
        current = join_ancestor(current, nxt, min_gap=max(1, gap))
        if not current:
            return []
    return current


def lookup_decomposed_block(indexes: KokoIndexSet, path: TreePath) -> PostingBlock:
    """Vectorized DPLI lookup of one path over a columnar index set.

    Mirrors :func:`lookup_decomposed` step for step, but every access and
    join is a whole-array operation over ``(sid, tid)``-sorted posting
    blocks; the returned block is sorted the same way, so materialising it
    reproduces the object-backed result exactly.
    """
    decomposed = decompose_path(path)
    last_step = path.steps[-1]
    last_is_word = last_step.kind == KIND_WORD

    # P1 and P2: hierarchy-index lookups, joined on the same token.
    base: PostingBlock | None = None
    if not is_trivial(decomposed.parse_label_path):
        base = indexes.pl_index.lookup_path_block(
            [(s.axis, s.label) for s in decomposed.parse_label_path.steps]
        )
    if not is_trivial(decomposed.pos_path):
        pos_block = indexes.pos_index.lookup_path_block(
            [(s.axis, s.label) for s in decomposed.pos_path.steps]
        )
        base = pos_block if base is None else join_same_token_block(base, pos_block)

    # Q: the word-path lookup (already ancestor-joined along the word chain).
    word_result = _lookup_word_path_block(indexes, decomposed.word_steps)

    if base is None and word_result is None:
        # The path constrains nothing (e.g. "//*"); every token qualifies,
        # which the hierarchy index can enumerate cheaply.
        return indexes.pl_index.lookup_path_block([(DESCENDANT, "*")])

    if base is None:
        if last_is_word:
            return word_result if word_result is not None else PostingBlock.empty()
        candidates = indexes.pl_index.lookup_path_block([(DESCENDANT, "*")])
        if word_result is None:
            return PostingBlock.empty()
        return under_words_block(candidates, word_result)

    result = base
    if word_result is not None:
        if last_is_word:
            result = join_same_token_block(result, word_result)
        else:
            result = under_words_block(result, word_result)
    return result


def _lookup_word_path_block(
    indexes: KokoIndexSet, word_steps: tuple[tuple[str, int], ...]
) -> PostingBlock | None:
    """Columnar word-path chain; None when the path has no word steps."""
    if not word_steps:
        return None
    word, _ = word_steps[0]
    current = indexes.word_index.lookup_block(word)
    for word, gap in word_steps[1:]:
        nxt = indexes.word_index.lookup_block(word)
        current = join_ancestor_block(current, nxt, min_gap=max(1, gap))
        if current.size == 0:
            return current
    return current


def candidate_sentences_for_query(
    indexes: KokoIndexSet, query: TreePatternQuery
) -> set[int]:
    """Sentences the KOKO indexes return for a whole tree-pattern query."""
    candidates: set[int] | None = None
    for path in query.paths:
        postings = lookup_decomposed(indexes, path)
        sids = {p.sid for p in postings}
        candidates = sids if candidates is None else candidates & sids
        if not candidates:
            return set()
    return candidates or set()
