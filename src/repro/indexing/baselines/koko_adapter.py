"""Adapter exposing the KOKO multi-index through the comparison interface.

Figures 6-8 compare index designs on build time, size, lookup time and
effectiveness.  This adapter wraps :class:`~repro.indexing.koko_index.KokoIndexSet`
so it can stand next to INVERTED, ADVINVERTED and SUBTREE in those
experiments, answering tree-pattern queries through the same decompose-and-
join procedure the engine's DPLI module uses.
"""

from __future__ import annotations

from ...nlp.types import Corpus
from ..decompose import candidate_sentences_for_query
from ..koko_index import KokoIndexSet
from ..query_ir import TreePatternQuery
from .base import BaseTreeIndex


class KokoMultiIndex(BaseTreeIndex):
    """The paper's multi-indexing scheme behind the comparison interface."""

    name = "KOKO"

    def __init__(self) -> None:
        super().__init__()
        self.index_set = KokoIndexSet()

    def _build(self, corpus: Corpus) -> None:
        self.index_set.build(corpus)

    def candidate_sentences(self, query: TreePatternQuery) -> set[int]:
        return candidate_sentences_for_query(self.index_set, query)

    def approximate_bytes(self) -> int:
        return self.index_set.approximate_bytes()
