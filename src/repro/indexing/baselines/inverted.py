"""The INVERTED baseline index (Section 6.2.1).

The simplest design: a single relation ``P(label, sentence_id, token_id)``
where *label* ranges over every annotation of every token — its surface
word, its POS tag, and its parse label.  A query is answered by retrieving
the sentences that contain **all** the labels mentioned in the query,
ignoring the tree structure entirely.  This makes lookups produce large
intermediate results and gives poor effectiveness, which is exactly the
behaviour Figures 7 and 8 report for INVERTED.
"""

from __future__ import annotations

from ...nlp.types import Corpus
from ...storage.btree import _sizeof
from ..query_ir import KIND_ANY, TreePatternQuery
from .base import BaseTreeIndex


class InvertedIndex(BaseTreeIndex):
    """Label → (sentence id, token id) postings, structure-agnostic."""

    name = "INVERTED"

    def __init__(self) -> None:
        super().__init__()
        # label -> list of (sid, tid); kept as a list to model the relation's
        # row-at-a-time retrieval cost.
        self._postings: dict[str, list[tuple[int, int]]] = {}
        self._all_sids: set[int] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, corpus: Corpus) -> None:
        for _, sentence in corpus.all_sentences():
            self._all_sids.add(sentence.sid)
            for token in sentence:
                for label in (token.text.lower(), token.pos.lower(), token.label.lower()):
                    self._postings.setdefault(label, []).append(
                        (sentence.sid, token.index)
                    )

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def candidate_sentences(self, query: TreePatternQuery) -> set[int]:
        labels = [
            step.label.lower()
            for path in query.paths
            for step in path.steps
            if step.kind != KIND_ANY
        ]
        if not labels:
            return set(self._all_sids)
        candidates: set[int] | None = None
        for label in labels:
            postings = self._postings.get(label, [])
            sids = {sid for sid, _ in postings}
            candidates = sids if candidates is None else candidates & sids
            if not candidates:
                return set()
        return candidates or set()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def approximate_bytes(self) -> int:
        # One relation row per (label, sid, tid): the label is stored in
        # every row, as it would be in the P(label, sid, tid) table.
        total = 0
        for label, postings in self._postings.items():
            total += len(postings) * (_sizeof(label) + 2 * 28 + 40)
        return total
