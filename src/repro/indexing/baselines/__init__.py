"""Index designs compared against KOKO's multi-index (Section 6.2)."""

from .advinverted import AdvInvertedIndex
from .base import BaseTreeIndex, UnsupportedQueryError
from .inverted import InvertedIndex
from .koko_adapter import KokoMultiIndex
from .subtree import SubtreeIndex

__all__ = [
    "AdvInvertedIndex",
    "BaseTreeIndex",
    "InvertedIndex",
    "KokoMultiIndex",
    "SubtreeIndex",
    "UnsupportedQueryError",
]


def all_index_designs() -> list[type[BaseTreeIndex]]:
    """The four designs in the order the paper's figures list them."""
    return [InvertedIndex, AdvInvertedIndex, SubtreeIndex, KokoMultiIndex]
