"""The SUBTREE baseline index (Chubak & Rafiei; Section 6.2.1).

Indexes every unique connected subtree of size up to ``mss`` (maximum
subtree size, 3 in the paper's setup) of every dependency tree, with the
*root-split* coding: the key of a subtree records its root label and the
multiset of (child label, grandchild labels) beneath it.  A query is
decomposed into overlapping subtrees of the same maximal size; the result is
the set of sentences containing all of them.

As in the paper, the design is built for constituency-style trees with a
single label alphabet, so two separate SUBTREE indexes are kept — one over
parse labels and one over POS tags — and their results are joined on
sentence ids when a query mixes the two layers.  Root-split coding supports
neither wildcards nor word labels; queries using them are rejected
(``supports`` returns False), matching the "125 out of 350 benchmark
queries" restriction reported in Section 6.2.1.
"""

from __future__ import annotations

from ...nlp.types import Corpus, Sentence
from ...storage.btree import _sizeof
from ..query_ir import (
    CHILD,
    KIND_PARSE_LABEL,
    KIND_POS,
    TreePath,
    TreePatternQuery,
)
from .base import BaseTreeIndex, UnsupportedQueryError

# A subtree key under root-split coding: (root label, tuple of child keys),
# where each child key is (child label, tuple of grandchild labels).
_SubtreeKey = tuple


class _SingleLayerSubtreeIndex:
    """SUBTREE index over one annotation layer (parse labels or POS tags)."""

    def __init__(self, mss: int, label_of) -> None:
        self.mss = mss
        self._label_of = label_of
        self._postings: dict[_SubtreeKey, set[int]] = {}
        self.key_count = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_sentence(self, sentence: Sentence) -> None:
        for token in sentence:
            for key in self._keys_rooted_at(sentence, token.index):
                bucket = self._postings.get(key)
                if bucket is None:
                    bucket = set()
                    self._postings[key] = bucket
                    self.key_count += 1
                bucket.add(sentence.sid)

    def _keys_rooted_at(self, sentence: Sentence, tid: int) -> list[_SubtreeKey]:
        """Every subtree of size <= mss rooted at token *tid* (root-split keys)."""
        root_label = self._label_of(sentence[tid])
        children = sentence.children(tid)
        keys: list[_SubtreeKey] = [(root_label, ())]
        if self.mss < 2:
            return keys
        # size-2 subtrees: root plus one child
        child_labels = [(c, self._label_of(sentence[c])) for c in children]
        for _, clabel in child_labels:
            keys.append((root_label, ((clabel, ()),)))
        if self.mss < 3:
            return keys
        # size-3 subtrees: root + two children, or root + child + grandchild
        for i in range(len(child_labels)):
            for j in range(i + 1, len(child_labels)):
                pair = tuple(sorted([(child_labels[i][1], ()), (child_labels[j][1], ())]))
                keys.append((root_label, pair))
        for ctid, clabel in child_labels:
            for gtid in sentence.children(ctid):
                glabel = self._label_of(sentence[gtid])
                keys.append((root_label, ((clabel, (glabel,)),)))
        return keys

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def sentences_for_path(self, labels: list[str], axes: list[str]) -> set[int] | None:
        """Sentences containing the chain of *labels*; None = unconstrained."""
        if not labels:
            return None
        result: set[int] | None = None
        # decompose the chain into overlapping (parent, child, grandchild)
        # windows of size mss; descendant axes break the chain into pieces
        segments = self._segments(labels, axes)
        for segment in segments:
            for start in range(0, max(1, len(segment) - self.mss + 1)):
                window = segment[start : start + self.mss]
                key = self._chain_key(window)
                sids = self._postings.get(key, set())
                result = set(sids) if result is None else result & sids
                if not result:
                    return set()
        return result

    @staticmethod
    def _segments(labels: list[str], axes: list[str]) -> list[list[str]]:
        """Split the label chain at descendant axes (structure is unknown there)."""
        segments: list[list[str]] = []
        current: list[str] = []
        for label, axis in zip(labels, axes):
            if axis == CHILD or not current:
                current.append(label)
            else:
                segments.append(current)
                current = [label]
        if current:
            segments.append(current)
        return [seg for seg in segments if seg]

    @staticmethod
    def _chain_key(window: list[str]) -> _SubtreeKey:
        if len(window) == 1:
            return (window[0], ())
        if len(window) == 2:
            return (window[0], ((window[1], ()),))
        return (window[0], ((window[1], (window[2],)),))

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def approximate_bytes(self) -> int:
        # One relation row per (subtree key, sid): the coded key is stored
        # with every posting, which is what makes SUBTREE the largest design.
        total = 0
        for key, sids in self._postings.items():
            total += len(sids) * (_sizeof(key) + 28 + 40)
        return total


class SubtreeIndex(BaseTreeIndex):
    """The two-layer SUBTREE index with root-split coding and mss=3."""

    name = "SUBTREE"

    def __init__(self, mss: int = 3) -> None:
        super().__init__()
        if mss < 1:
            raise ValueError("mss must be >= 1")
        self.mss = mss
        self._pl = _SingleLayerSubtreeIndex(mss, lambda tok: tok.label.lower())
        self._pos = _SingleLayerSubtreeIndex(mss, lambda tok: tok.pos.lower())
        self._all_sids: set[int] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, corpus: Corpus) -> None:
        for _, sentence in corpus.all_sentences():
            self._all_sids.add(sentence.sid)
            self._pl.add_sentence(sentence)
            self._pos.add_sentence(sentence)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def supports(self, query: TreePatternQuery) -> bool:
        return not (query.uses_wildcards() or query.uses_words())

    def candidate_sentences(self, query: TreePatternQuery) -> set[int]:
        if not self.supports(query):
            raise UnsupportedQueryError(
                "SUBTREE with root-split coding supports neither wildcards nor "
                "word labels"
            )
        candidates: set[int] | None = None
        for path in query.paths:
            sids = self._sentences_for_path(path)
            if sids is not None:
                candidates = sids if candidates is None else candidates & sids
                if not candidates:
                    return set()
        return candidates if candidates is not None else set(self._all_sids)

    def _sentences_for_path(self, path: TreePath) -> set[int] | None:
        pl_labels = [s.label.lower() for s in path.steps if s.kind == KIND_PARSE_LABEL]
        pl_axes = [s.axis for s in path.steps if s.kind == KIND_PARSE_LABEL]
        pos_labels = [s.label.lower() for s in path.steps if s.kind == KIND_POS]
        pos_axes = [s.axis for s in path.steps if s.kind == KIND_POS]

        result: set[int] | None = None
        pl_sids = self._pl.sentences_for_path(pl_labels, pl_axes)
        if pl_sids is not None:
            result = pl_sids
        pos_sids = self._pos.sentences_for_path(pos_labels, pos_axes)
        if pos_sids is not None:
            # joining the two layers on sentence id only (the root-split keys
            # of different layers cannot be compared token-for-token), which
            # is the precision loss the paper notes for multi-output queries
            result = pos_sids if result is None else result & pos_sids
        return result

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def approximate_bytes(self) -> int:
        return self._pl.approximate_bytes() + self._pos.approximate_bytes()

    @property
    def unique_subtrees(self) -> int:
        """Number of distinct subtree keys across both layers."""
        return self._pl.key_count + self._pos.key_count
