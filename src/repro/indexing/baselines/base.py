"""Common interface for the index designs compared in Figures 6-8.

Every index (the three baselines and the KOKO multi-index adapter) exposes:

* ``build(corpus)``      — construct the index, recording build time,
* ``candidate_sentences(query)`` — sentence ids the index *returns* for a
  tree-pattern query (the numerator of lookup cost and the denominator of
  the effectiveness score),
* ``approximate_bytes()`` — size accounting for Figure 6(b),
* ``supports(query)``    — whether the design can process the query at all
  (SUBTREE with root-split coding cannot handle wildcards or word labels,
  as noted in Section 6.2.1).
"""

from __future__ import annotations

import abc
import time

from ...nlp.types import Corpus
from ..query_ir import TreePatternQuery


class UnsupportedQueryError(Exception):
    """Raised when an index design cannot evaluate a query."""


class BaseTreeIndex(abc.ABC):
    """Abstract base class for the compared index designs."""

    #: short name used in experiment tables ("INVERTED", "KOKO", ...)
    name: str = "BASE"

    def __init__(self) -> None:
        self.build_seconds = 0.0
        self._built = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self, corpus: Corpus) -> "BaseTreeIndex":
        """Build the index over *corpus*, recording wall-clock build time."""
        started = time.perf_counter()
        self._build(corpus)
        self.build_seconds = time.perf_counter() - started
        self._built = True
        return self

    @abc.abstractmethod
    def _build(self, corpus: Corpus) -> None:
        """Design-specific construction."""

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def candidate_sentences(self, query: TreePatternQuery) -> set[int]:
        """Sentence ids this index returns as candidates for *query*."""

    def supports(self, query: TreePatternQuery) -> bool:
        """Whether this design can evaluate *query* (default: yes)."""
        return True

    def timed_lookup(self, query: TreePatternQuery) -> tuple[set[int], float]:
        """Run a lookup and return ``(candidates, seconds)``."""
        started = time.perf_counter()
        candidates = self.candidate_sentences(query)
        return candidates, time.perf_counter() - started

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def approximate_bytes(self) -> int:
        """Estimated index footprint in bytes."""
