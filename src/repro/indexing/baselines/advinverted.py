"""The ADVINVERTED baseline index (Bird et al.; Section 6.2.1).

An enriched inverted index over the relation

    ``P(label, sentence_id, token_id, left, right, depth, pid)``

where, as in the paper, the extra columns describe the token's position in
the dependency tree (subtree extent, depth, parent token id).  Structural
conditions — child and descendant axes — are evaluated by joining the
relation with itself along the path, which is precise (effectiveness close
to 1) but requires work proportional to the posting-list sizes at every
step, making it notably slower than designs that index the hierarchy
directly.
"""

from __future__ import annotations

from ...nlp.types import Corpus
from ...storage.btree import _sizeof
from ..query_ir import CHILD, KIND_ANY, TreePath, TreePatternQuery
from .base import BaseTreeIndex

# One relation row: (sid, tid, left, right, depth, pid)
_Row = tuple[int, int, int, int, int, int]


class AdvInvertedIndex(BaseTreeIndex):
    """Structure-aware inverted index evaluated by relational self-joins."""

    name = "ADVINVERTED"

    def __init__(self) -> None:
        super().__init__()
        self._postings: dict[str, list[_Row]] = {}
        self._rows_by_sentence: dict[int, list[_Row]] = {}
        self._all_sids: set[int] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, corpus: Corpus) -> None:
        for _, sentence in corpus.all_sentences():
            self._all_sids.add(sentence.sid)
            rows_here: list[_Row] = []
            for token in sentence:
                left, right = sentence.subtree_span(token.index)
                row: _Row = (
                    sentence.sid,
                    token.index,
                    left,
                    right,
                    sentence.depth(token.index),
                    token.head,
                )
                rows_here.append(row)
                for label in (token.text.lower(), token.pos.lower(), token.label.lower()):
                    self._postings.setdefault(label, []).append(row)
            self._rows_by_sentence[sentence.sid] = rows_here

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def candidate_sentences(self, query: TreePatternQuery) -> set[int]:
        candidates: set[int] | None = None
        for path in query.paths:
            sids = self._sentences_matching_path(path)
            candidates = sids if candidates is None else candidates & sids
            if not candidates:
                return set()
        return candidates if candidates is not None else set(self._all_sids)

    def _sentences_matching_path(self, path: TreePath) -> set[int]:
        if not path.steps:
            return set(self._all_sids)
        current = self._rows_for_step(path.steps[0], anchored=True)
        for step in path.steps[1:]:
            step_rows = self._rows_for_step(step, anchored=False)
            by_sentence: dict[int, list[_Row]] = {}
            for row in step_rows:
                by_sentence.setdefault(row[0], []).append(row)
            joined: list[_Row] = []
            for parent_row in current:
                for child_row in by_sentence.get(parent_row[0], ()):
                    if step.axis == CHILD:
                        if child_row[5] == parent_row[1]:
                            joined.append(child_row)
                    else:
                        if (
                            parent_row[2] <= child_row[2]
                            and child_row[3] <= parent_row[3]
                            and child_row[4] > parent_row[4]
                        ):
                            joined.append(child_row)
            current = joined
            if not current:
                return set()
        return {row[0] for row in current}

    def _rows_for_step(self, step, anchored: bool) -> list[_Row]:
        if step.kind == KIND_ANY:
            rows = [row for rows in self._rows_by_sentence.values() for row in rows]
        else:
            rows = list(self._postings.get(step.label.lower(), ()))
        if anchored and step.axis == CHILD:
            # the first child-axis step is anchored at the sentence root
            rows = [row for row in rows if row[5] < 0]
        return rows

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def approximate_bytes(self) -> int:
        # One relation row per (label, sid, tid, left, right, depth, pid).
        total = 0
        for label, rows in self._postings.items():
            total += len(rows) * (_sizeof(label) + 6 * 28 + 40)
        return total
