"""The KOKO multi-index: word + entity inverted indexes, PL + POS hierarchies.

:class:`KokoIndexSet` is what the engine builds during preprocessing
(Figure 2 of the paper, "Parse text & build indices"): it owns the four
indexes, records build time, can materialise everything into the embedded
storage engine with the schemas of Section 6.2.1, and reports its size for
the index-size experiments (Figure 6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..nlp.types import Corpus, Document
from ..storage.database import Database
from .columnar import StringInterner
from .entity_index import EntityIndex
from .hierarchy import HierarchyIndex, parse_label_index, pos_tag_index
from .postings import Posting
from .word_index import WordIndex


@dataclass
class IndexStatistics:
    """Summary statistics for one built index set."""

    sentences: int
    tokens: int
    build_seconds: float
    word_postings: int
    entity_postings: int
    pl_nodes: int
    pos_nodes: int
    pl_compression: float
    pos_compression: float
    approximate_bytes: int

    @classmethod
    def merged(cls, parts: "Sequence[IndexStatistics]") -> "IndexStatistics":
        """Aggregate per-shard statistics into corpus-wide statistics.

        Counts, build seconds and byte estimates add up; the compression
        ratios are recomputed from the summed node and token counts (each
        hierarchy merges every token, so ``1 - nodes / tokens`` holds for
        the union exactly as it does per shard).
        """
        tokens = sum(p.tokens for p in parts)
        pl_nodes = sum(p.pl_nodes for p in parts)
        pos_nodes = sum(p.pos_nodes for p in parts)
        return cls(
            sentences=sum(p.sentences for p in parts),
            tokens=tokens,
            build_seconds=sum(p.build_seconds for p in parts),
            word_postings=sum(p.word_postings for p in parts),
            entity_postings=sum(p.entity_postings for p in parts),
            pl_nodes=pl_nodes,
            pos_nodes=pos_nodes,
            pl_compression=(1.0 - pl_nodes / tokens) if tokens else 0.0,
            pos_compression=(1.0 - pos_nodes / tokens) if tokens else 0.0,
            approximate_bytes=sum(p.approximate_bytes for p in parts),
        )


class KokoIndexSet:
    """Builds and owns KOKO's four indexes over one corpus."""

    def __init__(self, columnar: bool = False) -> None:
        self.columnar = columnar
        self._interner = StringInterner() if columnar else None
        self.word_index = WordIndex(columnar=columnar, interner=self._interner)
        self.entity_index = EntityIndex(columnar=columnar)
        self.pl_index: HierarchyIndex = parse_label_index(
            columnar=columnar, interner=self._interner
        )
        self.pos_index: HierarchyIndex = pos_tag_index(
            columnar=columnar, interner=self._interner
        )
        self.build_seconds = 0.0
        self._sentences = 0
        self._tokens = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self, corpus: Corpus) -> "KokoIndexSet":
        """Index every sentence of *corpus*; returns self for chaining."""
        started = time.perf_counter()
        if self.columnar:
            self._splice_sentences([s for _, s in corpus.all_sentences()])
        else:
            for _, sentence in corpus.all_sentences():
                self.add_sentence(sentence)
        self.build_seconds += time.perf_counter() - started
        return self

    def add_document(self, document: Document) -> "KokoIndexSet":
        """Incrementally index every sentence of *document*.

        A sequence of ``add_document`` calls over the documents of a corpus
        (in order) produces an index set identical to ``build(corpus)`` —
        same postings, same hierarchy nodes, same statistics.
        """
        started = time.perf_counter()
        if self.columnar:
            self._splice_sentences(list(document))
        else:
            for sentence in document:
                self.add_sentence(sentence)
        self.build_seconds += time.perf_counter() - started
        return self

    def remove_document(self, document: Document) -> "KokoIndexSet":
        """Incrementally un-index every sentence of *document*."""
        started = time.perf_counter()
        for sentence in document:
            self.remove_sentence(sentence)
        self.build_seconds += time.perf_counter() - started
        return self

    def add_sentence(self, sentence) -> None:
        """Index one sentence in all four indexes."""
        if self.columnar:
            self._add_sentence_columnar(sentence)
            return
        self.word_index.add_sentence(sentence)
        self.entity_index.add_sentence(sentence)
        self.pl_index.add_sentence(sentence)
        self.pos_index.add_sentence(sentence)
        for token in sentence:
            plid = self.pl_index.node_id_of(sentence.sid, token.index)
            posid = self.pos_index.node_id_of(sentence.sid, token.index)
            self.word_index.set_node_ids(sentence.sid, token.index, plid, posid)
        self._sentences += 1
        self._tokens += len(sentence)

    def _add_sentence_columnar(self, sentence) -> None:
        """Columnar splice of a single sentence (one-element batch)."""
        self._splice_sentences((sentence,))

    def _splice_sentences(self, sentences) -> None:
        """Columnar splice: columnise each sentence once, flush one batch.

        Each dependency tree is read as whole-sentence columns
        (:meth:`~repro.nlp.types.Sentence.tree_columns`) and merged into
        the two hierarchy tries (a memoised walk — no rows yet); the W, PL,
        POS and E rows of the whole batch accumulate in flat column lists,
        ``(sid, tid)``-ordered, and land in one
        :meth:`~repro.indexing.columnar.ColumnarPostings.append_batch` per
        store — no per-token :class:`Posting` construction, no per-sentence
        array work, O(batch) total.  The PL and POS stores share the W
        batch's column lists (their six columns are a prefix of W's eight).
        """
        pl_merge = self.pl_index.merge_tree
        pos_merge = self.pos_index.merge_tree
        # one shared row payload: sid/tid/left/right/depth(/wid) columns for
        # W, PL and POS alike; node-id columns double as the hierarchy keys
        w_sids: list[int] = []
        w_tids: list[int] = []
        w_lefts: list[int] = []
        w_rights: list[int] = []
        w_depths: list[int] = []
        w_plids: list[int] = []
        w_posids: list[int] = []
        w_texts: list[str] = []
        e_sids: list[int] = []
        e_lefts: list[int] = []
        e_rights: list[int] = []
        e_etypes: list[str] = []
        e_texts: list[str] = []
        all_reachable = True
        for sentence in sentences:
            sid = sentence.sid
            n = len(sentence)
            self._sentences += 1
            self._tokens += n
            mentions = sentence.entities
            if mentions:
                e_sids.extend([sid] * len(mentions))
                e_lefts.extend(m.start for m in mentions)
                e_rights.extend(m.end for m in mentions)
                e_etypes.extend(m.etype for m in mentions)
                e_texts.extend(m.text for m in mentions)
            if n == 0:
                continue
            tokens = sentence.tokens
            children, spans, depths = sentence.tree_columns()
            # hashable shape, built once and shared by both hierarchy
            # merges (their merge memos key on it)
            structure = tuple(map(tuple, children))
            root = sentence.root_index()
            plids = pl_merge(root, structure, [t.label for t in tokens])
            posids = pos_merge(root, structure, [t.pos for t in tokens])
            if -1 in plids:
                all_reachable = False
            w_sids.extend([sid] * n)
            w_tids.extend(range(n))
            w_lefts.extend([span[0] for span in spans])
            w_rights.extend([span[1] for span in spans])
            w_depths.extend(depths)
            w_plids.extend(plids)
            w_posids.extend(posids)
            w_texts.extend([token.text for token in tokens])
        if w_texts:
            wids = self._interner.intern_many(w_texts)
            if all_reachable:
                # the hierarchy rows are exactly the W rows: share the lists
                h_columns = (w_sids, w_tids, w_lefts, w_rights, w_depths, wids)
                pl_kids, pos_kids = w_plids, w_posids
            else:
                # tokens unreachable from a root carry no hierarchy node
                keep = [i for i, plid in enumerate(w_plids) if plid != -1]
                h_columns = tuple(
                    [column[i] for i in keep]
                    for column in (w_sids, w_tids, w_lefts, w_rights, w_depths, wids)
                )
                pl_kids = [w_plids[i] for i in keep]
                pos_kids = [w_posids[i] for i in keep]
            self.pl_index.append_rows(pl_kids, h_columns)
            self.pos_index.append_rows(pos_kids, h_columns)
            self.word_index.add_token_rows(
                w_texts,
                (
                    w_sids, w_tids, w_lefts, w_rights,
                    w_depths, wids, w_plids, w_posids,
                ),
            )
        if e_sids:
            self.entity_index.add_rows(e_sids, e_lefts, e_rights, e_etypes, e_texts)

    def remove_sentence(self, sentence) -> None:
        """Remove one sentence from all four indexes."""
        self.word_index.remove_sentence(sentence)
        self.entity_index.remove_sentence(sentence)
        self.pl_index.remove_sentence(sentence)
        self.pos_index.remove_sentence(sentence)
        self._sentences -= 1
        self._tokens -= len(sentence)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def statistics(self) -> IndexStatistics:
        return IndexStatistics(
            sentences=self._sentences,
            tokens=self._tokens,
            build_seconds=self.build_seconds,
            word_postings=len(self.word_index),
            entity_postings=len(self.entity_index),
            pl_nodes=self.pl_index.node_count,
            pos_nodes=self.pos_index.node_count,
            pl_compression=self.pl_index.compression_ratio(),
            pos_compression=self.pos_index.compression_ratio(),
            approximate_bytes=self.approximate_bytes(),
        )

    def approximate_bytes(self) -> int:
        """Estimated footprint of the four relations (Section 6.2.1 schemas).

        The estimate models each index as its relational rows — the same
        accounting used for the baseline designs — so that Figure 6(b)'s
        comparison reflects the index *designs*: one W row per token (word
        plus 7 integers), one E row per entity mention, and one closure-table
        row per (node, ancestor) pair of the merged hierarchies, which is
        tiny because merging removes the vast majority of nodes.
        """
        from ..storage.btree import _sizeof

        total = 0
        if self.columnar:
            # Same accounting over the columnar layout: per-key row counts
            # for W, interned strings for E — identical totals by design
            # (the equivalence tests compare statistics across backends).
            word_store = self.word_index._store
            for kid in word_store.live_key_ids():
                word = word_store.key_of(kid)
                total += word_store.key_count(kid) * (_sizeof(word) + 7 * 28 + 40)
            entity_store = self.entity_index._store_type
            strings = self.entity_index._strings
            text_ids = entity_store.all_arrays()[3]
            for text_id in text_ids.tolist():
                total += _sizeof(strings.text(text_id)) + 3 * 28 + 40
        else:
            for word in self.word_index.vocabulary():
                postings = self.word_index.lookup(word)
                total += len(postings) * (_sizeof(word) + 7 * 28 + 40)
            for posting in self.entity_index.all_postings():
                total += _sizeof(posting.text) + 3 * 28 + 40
        for hierarchy in (self.pl_index, self.pos_index):
            for node in hierarchy.nodes():
                # One closure-table row per (node, ancestor) pair.  The
                # posting lists of hierarchy nodes are NOT stored again: they
                # are recovered by joining the closure table with W on
                # W.plid / W.posid (Section 6.2.1), which is what makes the
                # multi-index the smallest design.
                ancestors = node.depth + 1
                total += ancestors * (2 * _sizeof(node.label) + 4 * 28 + 40)
        return total

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def to_columnar(self) -> "KokoIndexSet":
        """Convert an object-backed index set to columnar storage, in place.

        Used by the service on snapshot-restored and bootstrap index sets
        (the persistence formats stay object-shaped on disk).  Postings,
        node ids, hierarchy structure and statistics are preserved exactly;
        subsequent ``add_sentence``/``remove_sentence`` calls take the
        columnar paths.  A no-op when already columnar.
        """
        if self.columnar:
            return self
        interner = StringInterner()
        self.word_index = WordIndex.from_object(self.word_index, interner)
        self.entity_index = EntityIndex.from_object(self.entity_index)
        self.pl_index.convert_to_columnar(interner)
        self.pos_index.convert_to_columnar(interner)
        self._interner = interner
        self.columnar = True
        return self

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def to_database(self, database: Database, create_indexes: bool = True) -> Database:
        """Store W, E, PL and POS relations (Section 6.2.1 schemas).

        ``create_indexes=False`` writes the relations without secondary
        B-trees — the snapshot path uses it because :meth:`from_database`
        only ever scans rows, and index-free tables capture, pickle and
        load substantially faster.
        """
        self.word_index.to_table(database, "W", create_indexes)
        self.entity_index.to_table(database, "E", create_indexes)
        self.pl_index.to_table(database, "PL", create_indexes)
        self.pos_index.to_table(database, "POS", create_indexes)
        return database

    @classmethod
    def from_database(
        cls,
        database: Database,
        documents: "Sequence[Document] | None" = None,
        table_suffix: str = "",
        build_seconds: float = 0.0,
    ) -> "KokoIndexSet":
        """Rebuild an index set from relations written by :meth:`to_database`.

        The inverse of the Section 6.2.1 materialisation: the word and entity
        indexes come straight back from ``W`` and ``E``, the hierarchy node
        structure from the ``PL``/``POS`` closure tables, and the hierarchy
        posting lists plus token → node maps from joining ``W`` on its
        ``plid``/``posid`` columns — no sentence is ever re-parsed.

        ``documents`` (the corpus slice the relations were built from) is
        optional but recommended: the relations store lower-cased words and
        mention texts, so the originals are recovered from the annotated
        sentences.  ``table_suffix`` selects one partition of a sharded
        layout (e.g. ``".3"`` for ``W.3``).
        """
        token_texts: dict[tuple[int, int], str] = {}
        mention_texts: dict[tuple[int, int, int], str] = {}
        sentence_lengths: dict[int, int] = {}
        for document in documents or ():
            for sentence in document:
                sentence_lengths[sentence.sid] = len(sentence)
                for token in sentence:
                    token_texts[(sentence.sid, token.index)] = token.text
                for mention in sentence.entities:
                    mention_texts[(sentence.sid, mention.start, mention.end)] = mention.text

        index_set = cls()
        token_rows: list[tuple[Posting, int, int]] = []
        index_set.word_index = WordIndex.from_table(
            database, f"W{table_suffix}", token_texts, postings_sink=token_rows
        )
        index_set.entity_index = EntityIndex.from_table(
            database, f"E{table_suffix}", mention_texts
        )
        index_set.pl_index.load_closure_table(database, f"PL{table_suffix}")
        index_set.pos_index.load_closure_table(database, f"POS{table_suffix}")

        # Hierarchy posting lists are recovered from W in row order (itself
        # deterministic: first-seen-word grouping); per-node posting order
        # differs from the original DFS merge order, but every consumer of
        # node postings sorts (posting-list union), so the restored index is
        # lookup-identical to the original.
        index_set.pl_index.attach_tokens(
            (plid, posting) for posting, plid, _posid in token_rows if plid != -1
        )
        index_set.pos_index.attach_tokens(
            (posid, posting) for posting, _plid, posid in token_rows if posid != -1
        )

        if documents is not None:
            index_set._sentences = sum(len(doc) for doc in documents)
            index_set._tokens = sum(sentence_lengths.values())
        else:
            index_set._sentences = len({posting.sid for posting, _, _ in token_rows})
            index_set._tokens = len(token_rows)
        index_set.build_seconds = build_seconds
        return index_set
