"""The word inverted index (Section 3.1).

Maps every word (lower-cased) to the posting list of its occurrences.  The
index also records, for each occurrence, the hierarchy-index node ids of the
token in the PL and POS indexes (``plid`` / ``posid``) — the extra columns
of the ``W`` relation in Section 6.2.1 that let the engine join inverted and
hierarchy indexes without touching the dependency trees again.
"""

from __future__ import annotations

from ..nlp.types import Corpus, Sentence
from ..storage.database import Database
from ..storage.table import Schema
from .postings import Posting, posting_for_token


class WordIndex:
    """Inverted index from word to posting list."""

    def __init__(self) -> None:
        self._postings: dict[str, list[Posting]] = {}
        self._node_ids: dict[tuple[int, int], tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_sentence(self, sentence: Sentence) -> None:
        """Index every token of *sentence*."""
        for token in sentence:
            posting = posting_for_token(sentence, token.index)
            self._postings.setdefault(token.text.lower(), []).append(posting)

    def add_corpus(self, corpus: Corpus) -> None:
        for _, sentence in corpus.all_sentences():
            self.add_sentence(sentence)

    def remove_sentence(self, sentence: Sentence) -> None:
        """Remove every posting contributed by *sentence* (by sentence id)."""
        sid = sentence.sid
        for token in sentence:
            word = token.text.lower()
            postings = self._postings.get(word)
            if postings is not None:
                postings[:] = [
                    p for p in postings if not (p.sid == sid and p.tid == token.index)
                ]
                if not postings:
                    del self._postings[word]
            self._node_ids.pop((sid, token.index), None)

    def set_node_ids(self, sid: int, tid: int, plid: int, posid: int) -> None:
        """Record the hierarchy-index node ids for one token occurrence."""
        self._node_ids[(sid, tid)] = (plid, posid)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup(self, word: str) -> list[Posting]:
        """Posting list of *word* (case-insensitive; empty if unseen)."""
        return list(self._postings.get(word.lower(), ()))

    def node_ids(self, sid: int, tid: int) -> tuple[int, int] | None:
        """The (plid, posid) recorded for a token occurrence, if any."""
        return self._node_ids.get((sid, tid))

    def vocabulary(self) -> list[str]:
        return sorted(self._postings)

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._postings

    def __len__(self) -> int:
        """Total number of postings."""
        return sum(len(p) for p in self._postings.values())

    # ------------------------------------------------------------------
    # materialisation (the W relation of Section 6.2.1)
    # ------------------------------------------------------------------
    W_SCHEMA = Schema.of("word", "x", "y", "u", "v", "d", "plid", "posid")

    def to_table(self, database: Database, table_name: str = "W", create_indexes: bool = True):
        """Materialise the index into *database* with the paper's W schema.

        ``create_indexes=False`` skips the secondary B-trees — used by the
        snapshot path, whose only reader (:meth:`from_table`) scans rows.
        """
        if database.has_table(table_name):
            database.drop_table(table_name)
        table = database.create_table(table_name, self.W_SCHEMA)
        for word, postings in self._postings.items():
            for posting in postings:
                plid, posid = self._node_ids.get((posting.sid, posting.tid), (-1, -1))
                table.insert(
                    (
                        word,
                        posting.sid,
                        posting.tid,
                        posting.left,
                        posting.right,
                        posting.depth,
                        plid,
                        posid,
                    )
                )
        if create_indexes:
            table.create_index("by_word", "word")
            table.create_index("by_sentence", "x")
        return table

    @classmethod
    def from_table(
        cls,
        database: Database,
        table_name: str = "W",
        token_texts: dict[tuple[int, int], str] | None = None,
        postings_sink: list[tuple[Posting, int, int]] | None = None,
    ) -> "WordIndex":
        """Rebuild a word index from a ``W`` relation written by :meth:`to_table`.

        ``token_texts`` maps ``(sid, tid)`` to the original surface form; the
        W relation stores only the lower-cased key, so without the map the
        rebuilt postings carry the lower-cased word.  Row order preserves the
        per-word posting order of the original index, so a round trip through
        the storage engine is lookup-identical.

        ``postings_sink`` (when given) collects ``(posting, plid, posid)``
        per row, so :meth:`KokoIndexSet.from_database` can re-attach the
        hierarchy posting lists without a second pass over W.
        """
        token_texts = token_texts or {}
        index = cls()
        postings = index._postings
        node_ids = index._node_ids
        lookup_text = token_texts.get
        for word, sid, tid, left, right, depth, plid, posid in database.table(table_name):
            posting = Posting(sid, tid, left, right, depth, lookup_text((sid, tid), word))
            bucket = postings.get(word)
            if bucket is None:
                postings[word] = [posting]
            else:
                bucket.append(posting)
            if plid != -1 or posid != -1:
                node_ids[(sid, tid)] = (plid, posid)
            if postings_sink is not None:
                postings_sink.append((posting, plid, posid))
        return index
