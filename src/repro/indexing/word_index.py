"""The word inverted index (Section 3.1).

Maps every word (lower-cased) to the posting list of its occurrences.  The
index also records, for each occurrence, the hierarchy-index node ids of the
token in the PL and POS indexes (``plid`` / ``posid``) — the extra columns
of the ``W`` relation in Section 6.2.1 that let the engine join inverted and
hierarchy indexes without touching the dependency trees again.

Two storage backends share this API: the original object-backed one (one
Python list of :class:`Posting` per word) and, with ``columnar=True``, a
:class:`~repro.indexing.columnar.ColumnarPostings` store whose ``W``-shaped
rows ``(sid, tid, left, right, depth, wid, plid, posid)`` live in flat
numpy columns — batch appends for the ingest splice, array slices for the
read-side joins.  The on-disk ``W`` relation is identical either way.
"""

from __future__ import annotations

from typing import Sequence

from ..nlp.types import Corpus, Sentence
from ..storage.database import Database
from ..storage.table import Schema
from .columnar import ColumnarPostings, PostingBlock, StringInterner
from .postings import Posting, posting_for_token

_W_COLUMNS = ("sid", "tid", "left", "right", "depth", "wid", "plid", "posid")


class WordIndex:
    """Inverted index from word to posting list."""

    def __init__(
        self, columnar: bool = False, interner: StringInterner | None = None
    ) -> None:
        self.columnar = columnar
        self._postings: dict[str, list[Posting]] = {}
        self._node_ids: dict[tuple[int, int], tuple[int, int]] = {}
        # NOTE: an explicit None test — a fresh shared interner is empty and
        # therefore falsy, and falling back to a private one here would make
        # stored word ids undecodable.
        self._interner = (
            (interner if interner is not None else StringInterner())
            if columnar
            else None
        )
        self._store = ColumnarPostings(_W_COLUMNS) if columnar else None
        # (sid, tid) -> (plid, posid), built lazily over the columnar rows
        self._pair_cache: dict[tuple[int, int], tuple[int, int]] | None = None
        # word-interner id -> store key id: the splice resolves keys by
        # integer instead of re-hashing each token's lower-cased text
        self._wid_kid: dict[int, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_sentence(self, sentence: Sentence) -> None:
        """Index every token of *sentence*."""
        if self.columnar:
            n = len(sentence)
            if n == 0:
                return
            _, spans, depths = sentence.tree_columns()
            texts = [token.text for token in sentence.tokens]
            self.add_sentence_batch(
                sentence.sid,
                texts,
                [span[0] for span in spans],
                [span[1] for span in spans],
                list(depths),
                [-1] * n,
                [-1] * n,
            )
            return
        for token in sentence:
            posting = posting_for_token(sentence, token.index)
            self._postings.setdefault(token.text.lower(), []).append(posting)

    def add_sentence_batch(
        self,
        sid: int,
        texts: list[str],
        lefts: list[int],
        rights: list[int],
        depths: list[int],
        plids: list[int],
        posids: list[int],
        wids: list[int] | None = None,
    ) -> None:
        """Columnar splice: append one sentence's tokens as a row batch.

        ``wids`` (word-interner ids for *texts*) may be passed when the
        caller already interned the tokens, avoiding a second pass.
        """
        if wids is None:
            intern_text = self._interner.intern
            wids = [intern_text(text) for text in texts]
        n = len(texts)
        self.add_token_rows(
            texts, ([sid] * n, range(n), lefts, rights, depths, wids, plids, posids)
        )

    def add_token_rows(
        self, texts: list[str], columns: "tuple[Sequence[int], ...]"
    ) -> None:
        """Columnar splice: append W rows spanning any number of sentences.

        *columns* are the eight W columns in ``(sid, tid)`` order; *texts*
        are the surface forms matching the ``wid`` column row for row.  Key
        ids resolve through the wid -> kid cache, so steady-state splices
        hash one int per token instead of one lower-cased string.
        """
        store = self._store
        assert store is not None, "add_token_rows requires columnar=True"
        cache = self._wid_kid
        intern_key = store.intern_key
        kids: list[int] = []
        append = kids.append
        for text, wid in zip(texts, columns[5]):
            kid = cache.get(wid)
            if kid is None:
                kid = intern_key(text.lower())
                cache[wid] = kid
            append(kid)
        store.append_batch(kids, columns)
        self._pair_cache = None

    def add_corpus(self, corpus: Corpus) -> None:
        for _, sentence in corpus.all_sentences():
            self.add_sentence(sentence)

    def remove_sentence(self, sentence: Sentence) -> None:
        """Remove every posting contributed by *sentence* (by sentence id)."""
        sid = sentence.sid
        if self.columnar:
            self._store.remove_sid(sid)
            self._pair_cache = None
            return
        for token in sentence:
            word = token.text.lower()
            postings = self._postings.get(word)
            if postings is not None:
                postings[:] = [
                    p for p in postings if not (p.sid == sid and p.tid == token.index)
                ]
                if not postings:
                    del self._postings[word]
            self._node_ids.pop((sid, token.index), None)

    def set_node_ids(self, sid: int, tid: int, plid: int, posid: int) -> None:
        """Record the hierarchy-index node ids for one token occurrence."""
        if self.columnar:
            raise RuntimeError(
                "columnar WordIndex takes node ids via add_sentence_batch"
            )
        self._node_ids[(sid, tid)] = (plid, posid)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup(self, word: str) -> list[Posting]:
        """Posting list of *word* (case-insensitive; empty if unseen)."""
        if self.columnar:
            return self.lookup_block(word).materialize()
        return list(self._postings.get(word.lower(), ()))

    def lookup_block(self, word: str) -> PostingBlock:
        """Posting list of *word* as a ``(sid, tid)``-sorted columnar block."""
        store = self._store
        assert store is not None, "lookup_block requires columnar=True"
        kid = store.key_id(word.lower())
        if kid is None:
            return PostingBlock.empty()
        sid, tid, left, right, depth, wid, _plid, _posid = store.arrays_for_key(kid)
        return PostingBlock(
            sid, tid, left, right, depth, wid, self._interner
        ).sort_positional()

    def node_ids(self, sid: int, tid: int) -> tuple[int, int] | None:
        """The (plid, posid) recorded for a token occurrence, if any."""
        if not self.columnar:
            return self._node_ids.get((sid, tid))
        cache = self._pair_cache
        if cache is None:
            _, cols = self._store.all_arrays_with_keys()
            sids, tids, plids, posids = cols[0], cols[1], cols[6], cols[7]
            cache = {
                (s, t): (pl, pos)
                for s, t, pl, pos in zip(
                    sids.tolist(), tids.tolist(), plids.tolist(), posids.tolist()
                )
                if pl != -1 or pos != -1
            }
            self._pair_cache = cache
        return cache.get((sid, tid))

    def vocabulary(self) -> list[str]:
        if self.columnar:
            store = self._store
            return sorted(store.key_of(kid) for kid in store.live_key_ids())
        return sorted(self._postings)

    def __contains__(self, word: str) -> bool:
        if self.columnar:
            kid = self._store.key_id(word.lower())
            return kid is not None and self._store.key_count(kid) > 0
        return word.lower() in self._postings

    def __len__(self) -> int:
        """Total number of postings."""
        if self.columnar:
            return self._store.total_rows
        return sum(len(p) for p in self._postings.values())

    # ------------------------------------------------------------------
    # conversion (object-backed -> columnar, used on snapshot restore)
    # ------------------------------------------------------------------
    @classmethod
    def from_object(
        cls, source: "WordIndex", interner: StringInterner
    ) -> "WordIndex":
        """A columnar copy of an object-backed index (postings + node ids)."""
        assert not source.columnar, "source is already columnar"
        index = cls(columnar=True, interner=interner)
        store = index._store
        node_ids = source._node_ids
        kids: list[int] = []
        columns: tuple[list[int], ...] = tuple([] for _ in _W_COLUMNS)
        sids, tids, lefts, rights, depths, wids, plids, posids = columns
        for word, postings in source._postings.items():
            kid = store.intern_key(word)
            for p in postings:
                kids.append(kid)
                sids.append(p.sid)
                tids.append(p.tid)
                lefts.append(p.left)
                rights.append(p.right)
                depths.append(p.depth)
                wids.append(interner.intern(p.word or word))
                plid, posid = node_ids.get((p.sid, p.tid), (-1, -1))
                plids.append(plid)
                posids.append(posid)
        store.append_batch(kids, columns)
        store.compact()
        return index

    # ------------------------------------------------------------------
    # materialisation (the W relation of Section 6.2.1)
    # ------------------------------------------------------------------
    W_SCHEMA = Schema.of("word", "x", "y", "u", "v", "d", "plid", "posid")

    def to_table(self, database: Database, table_name: str = "W", create_indexes: bool = True):
        """Materialise the index into *database* with the paper's W schema.

        ``create_indexes=False`` skips the secondary B-trees — used by the
        snapshot path, whose only reader (:meth:`from_table`) scans rows.
        """
        if database.has_table(table_name):
            database.drop_table(table_name)
        table = database.create_table(table_name, self.W_SCHEMA)
        if self.columnar:
            store = self._store
            for kid in store.live_key_ids():
                word = store.key_of(kid)
                rows = store.arrays_for_key(kid)
                for sid, tid, left, right, depth, _wid, plid, posid in zip(
                    *(column.tolist() for column in rows)
                ):
                    table.insert((word, sid, tid, left, right, depth, plid, posid))
        else:
            for word, postings in self._postings.items():
                for posting in postings:
                    plid, posid = self._node_ids.get((posting.sid, posting.tid), (-1, -1))
                    table.insert(
                        (
                            word,
                            posting.sid,
                            posting.tid,
                            posting.left,
                            posting.right,
                            posting.depth,
                            plid,
                            posid,
                        )
                    )
        if create_indexes:
            table.create_index("by_word", "word")
            table.create_index("by_sentence", "x")
        return table

    @classmethod
    def from_table(
        cls,
        database: Database,
        table_name: str = "W",
        token_texts: dict[tuple[int, int], str] | None = None,
        postings_sink: list[tuple[Posting, int, int]] | None = None,
    ) -> "WordIndex":
        """Rebuild a word index from a ``W`` relation written by :meth:`to_table`.

        ``token_texts`` maps ``(sid, tid)`` to the original surface form; the
        W relation stores only the lower-cased key, so without the map the
        rebuilt postings carry the lower-cased word.  Row order preserves the
        per-word posting order of the original index, so a round trip through
        the storage engine is lookup-identical.  The rebuilt index is
        object-backed; convert with :meth:`from_object` if the owner runs
        columnar.

        ``postings_sink`` (when given) collects ``(posting, plid, posid)``
        per row, so :meth:`KokoIndexSet.from_database` can re-attach the
        hierarchy posting lists without a second pass over W.
        """
        token_texts = token_texts or {}
        index = cls()
        postings = index._postings
        node_ids = index._node_ids
        lookup_text = token_texts.get
        for word, sid, tid, left, right, depth, plid, posid in database.table(table_name):
            posting = Posting(sid, tid, left, right, depth, lookup_text((sid, tid), word))
            bucket = postings.get(word)
            if bucket is None:
                postings[word] = [posting]
            else:
                bucket.append(posting)
            if plid != -1 or posid != -1:
                node_ids[(sid, tid)] = (plid, posid)
            if postings_sink is not None:
                postings_sink.append((posting, plid, posid))
        return index
