"""The word inverted index (Section 3.1).

Maps every word (lower-cased) to the posting list of its occurrences.  The
index also records, for each occurrence, the hierarchy-index node ids of the
token in the PL and POS indexes (``plid`` / ``posid``) — the extra columns
of the ``W`` relation in Section 6.2.1 that let the engine join inverted and
hierarchy indexes without touching the dependency trees again.
"""

from __future__ import annotations

from ..nlp.types import Corpus, Sentence
from ..storage.database import Database
from ..storage.table import Schema
from .postings import Posting, posting_for_token


class WordIndex:
    """Inverted index from word to posting list."""

    def __init__(self) -> None:
        self._postings: dict[str, list[Posting]] = {}
        self._node_ids: dict[tuple[int, int], tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_sentence(self, sentence: Sentence) -> None:
        """Index every token of *sentence*."""
        for token in sentence:
            posting = posting_for_token(sentence, token.index)
            self._postings.setdefault(token.text.lower(), []).append(posting)

    def add_corpus(self, corpus: Corpus) -> None:
        for _, sentence in corpus.all_sentences():
            self.add_sentence(sentence)

    def remove_sentence(self, sentence: Sentence) -> None:
        """Remove every posting contributed by *sentence* (by sentence id)."""
        sid = sentence.sid
        for token in sentence:
            word = token.text.lower()
            postings = self._postings.get(word)
            if postings is not None:
                postings[:] = [
                    p for p in postings if not (p.sid == sid and p.tid == token.index)
                ]
                if not postings:
                    del self._postings[word]
            self._node_ids.pop((sid, token.index), None)

    def set_node_ids(self, sid: int, tid: int, plid: int, posid: int) -> None:
        """Record the hierarchy-index node ids for one token occurrence."""
        self._node_ids[(sid, tid)] = (plid, posid)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup(self, word: str) -> list[Posting]:
        """Posting list of *word* (case-insensitive; empty if unseen)."""
        return list(self._postings.get(word.lower(), ()))

    def node_ids(self, sid: int, tid: int) -> tuple[int, int] | None:
        """The (plid, posid) recorded for a token occurrence, if any."""
        return self._node_ids.get((sid, tid))

    def vocabulary(self) -> list[str]:
        return sorted(self._postings)

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._postings

    def __len__(self) -> int:
        """Total number of postings."""
        return sum(len(p) for p in self._postings.values())

    # ------------------------------------------------------------------
    # materialisation (the W relation of Section 6.2.1)
    # ------------------------------------------------------------------
    W_SCHEMA = Schema.of("word", "x", "y", "u", "v", "d", "plid", "posid")

    def to_table(self, database: Database, table_name: str = "W"):
        """Materialise the index into *database* with the paper's W schema."""
        if database.has_table(table_name):
            database.drop_table(table_name)
        table = database.create_table(table_name, self.W_SCHEMA)
        for word, postings in self._postings.items():
            for posting in postings:
                plid, posid = self._node_ids.get((posting.sid, posting.tid), (-1, -1))
                table.insert(
                    (
                        word,
                        posting.sid,
                        posting.tid,
                        posting.left,
                        posting.right,
                        posting.depth,
                        plid,
                        posid,
                    )
                )
        table.create_index("by_word", "word")
        table.create_index("by_sentence", "x")
        return table
