"""Hash-partitioned storage for the KOKO multi-index.

A :class:`ShardedIndexSet` owns N independent
:class:`~repro.indexing.koko_index.KokoIndexSet` shards and routes every
document to exactly one of them by a **stable** hash of its ``doc_id``
(``zlib.crc32``, so routing survives process restarts — Python's builtin
``hash`` is salted per process).  Each shard supports the same incremental
``add_document`` / ``remove_document`` maintenance as an unsharded index
set, which is what lets the service layer give every shard its own write
lock: ingesting one document touches one shard only.

Partitioning by document (not by sentence) keeps every index self-contained
per shard — DPLI, skip-plan generation and aggregation never need postings
from another shard, so query execution fans out embarrassingly parallel and
the per-shard results merge by sentence id
(:func:`~repro.koko.results.merge_results`).
"""

from __future__ import annotations

import zlib
from typing import Iterator

from ..nlp.types import Corpus, Document
from ..storage.database import Database
from .koko_index import IndexStatistics, KokoIndexSet


def shard_of(doc_id: str, num_shards: int) -> int:
    """The shard index (0-based) document *doc_id* is routed to.

    Stable across processes and platforms — routing is part of the storage
    layout, so it must not depend on Python's salted ``hash``.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    return zlib.crc32(doc_id.encode("utf-8")) % num_shards


class ShardedIndexSet:
    """N hash-partitioned :class:`KokoIndexSet` shards behaving as one."""

    def __init__(self, num_shards: int = 4, columnar: bool = False) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        self.shards: list[KokoIndexSet] = [
            KokoIndexSet(columnar=columnar) for _ in range(num_shards)
        ]

    def to_columnar(self) -> "ShardedIndexSet":
        """Convert every shard to columnar storage, in place; returns self."""
        for shard in self.shards:
            shard.to_columnar()
        return self

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_id(self, doc_id: str) -> int:
        """Which shard *doc_id* lives in."""
        return shard_of(doc_id, len(self.shards))

    def shard_for(self, doc_id: str) -> KokoIndexSet:
        """The shard index set *doc_id* lives in."""
        return self.shards[self.shard_id(doc_id)]

    def __iter__(self) -> Iterator[KokoIndexSet]:
        return iter(self.shards)

    def __len__(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------
    # construction / incremental maintenance
    # ------------------------------------------------------------------
    def build(self, corpus: Corpus) -> "ShardedIndexSet":
        """Route and index every document of *corpus*; returns self."""
        for document in corpus:
            self.add_document(document)
        return self

    def add_document(self, document: Document) -> KokoIndexSet:
        """Incrementally index *document* in its shard; returns that shard."""
        shard = self.shard_for(document.doc_id)
        shard.add_document(document)
        return shard

    def remove_document(self, document: Document) -> KokoIndexSet:
        """Incrementally un-index *document* from its shard; returns it."""
        shard = self.shard_for(document.doc_id)
        shard.remove_document(document)
        return shard

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def statistics(self) -> IndexStatistics:
        """Corpus-wide statistics, merged across every shard."""
        return IndexStatistics.merged([shard.statistics() for shard in self.shards])

    def statistics_by_shard(self) -> list[IndexStatistics]:
        """Per-shard statistics, in shard order (the skew/balance view)."""
        return [shard.statistics() for shard in self.shards]

    def approximate_bytes(self) -> int:
        return sum(shard.approximate_bytes() for shard in self.shards)

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def to_database(self, database: Database) -> Database:
        """Store each shard's W/E/PL/POS relations under suffixed names.

        Shard *i*'s relations become ``W.i``, ``E.i``, ``PL.i`` and
        ``POS.i`` — the partitioned equivalent of the Section 6.2.1 layout.
        """
        for index, shard in enumerate(self.shards):
            shard.word_index.to_table(database, f"W.{index}")
            shard.entity_index.to_table(database, f"E.{index}")
            shard.pl_index.to_table(database, f"PL.{index}")
            shard.pos_index.to_table(database, f"POS.{index}")
        return database

    @classmethod
    def from_database(
        cls,
        database: Database,
        num_shards: int,
        documents_by_shard: "list[list[Document]] | None" = None,
        build_seconds_by_shard: "list[float] | None" = None,
    ) -> "ShardedIndexSet":
        """Rebuild a sharded index set from a partitioned Section 6.2.1 layout.

        The inverse of :meth:`to_database`: shard *i* is restored from the
        ``W.i``/``E.i``/``PL.i``/``POS.i`` relations via
        :meth:`KokoIndexSet.from_database`.  ``documents_by_shard`` supplies
        each shard's corpus slice so original-case words and mention texts
        come back exactly.
        """
        index_set = cls(num_shards)
        index_set.shards = [
            KokoIndexSet.from_database(
                database,
                documents=documents_by_shard[i] if documents_by_shard else None,
                table_suffix=f".{i}",
                build_seconds=build_seconds_by_shard[i] if build_seconds_by_shard else 0.0,
            )
            for i in range(num_shards)
        ]
        return index_set
