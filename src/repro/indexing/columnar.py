"""Columnar (numpy-backed) posting storage and vectorized posting algebra.

The object-backed indexes keep one Python list of
:class:`~repro.indexing.postings.Posting` dataclasses per key, which makes
the ingest splice allocation-bound and the read-side joins interpreter-bound.
This module provides the columnar alternative the HTAP literature
(Polynesia and its follow-ups) prescribes: a *main* structure of flat,
sorted ``int64`` column arrays fed by a small append-only *delta* tail.

* :class:`ColumnarPostings` — a generic store of integer rows grouped by an
  interned key.  Appends go to per-column Python lists (O(batch));
  compaction merges the delta into the key-sorted main arrays and rebuilds
  the key-offset table, so per-key access is a ``searchsorted``-free slice.
* :class:`PostingBlock` — a bundle of parallel ``(sid, tid, left, right,
  depth)`` arrays flowing through the vectorized join pipeline, with lazy
  materialisation back into :class:`Posting` objects.
* ``join_*_block`` functions — whole-array implementations of the paper's
  posting-list algebra (Section 4.2.2).  Ancestor axes are evaluated as
  interval/window range predicates over the ``left/right/depth`` encoding of
  the dependency trees — the DMR-XPath window-optimization trick.

Thread-safety: reads never mutate the main/delta split (lazy caches are
idempotent), so concurrent readers are safe; compaction only runs inside
append/remove calls, which the service serialises under its shard write
locks.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from .postings import Posting

__all__ = [
    "ColumnarPostings",
    "PostingBlock",
    "PostingView",
    "StringInterner",
    "covers_block",
    "join_ancestor_block",
    "join_same_token_block",
    "parent_of_block",
    "under_words_block",
]

_INT = np.int64

#: compaction threshold: merge the delta once it outgrows max(this, |main|)
_MIN_COMPACT_ROWS = 4096


class StringInterner:
    """Bidirectional string ↔ small-int mapping shared by columnar stores."""

    __slots__ = ("_ids", "_texts")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._texts: list[str] = []

    def intern(self, text: str) -> int:
        """The stable id of *text*, assigning the next id on first sight."""
        wid = self._ids.get(text)
        if wid is None:
            wid = len(self._texts)
            self._ids[text] = wid
            self._texts.append(text)
        return wid

    def intern_many(self, texts: "Sequence[str]") -> list[int]:
        """Ids for every string of *texts*, in order (one pass, no frames)."""
        ids = self._ids
        stored = self._texts
        out: list[int] = []
        append = out.append
        for text in texts:
            wid = ids.get(text)
            if wid is None:
                wid = len(stored)
                ids[text] = wid
                stored.append(text)
            append(wid)
        return out

    def text(self, wid: int) -> str:
        """The string interned under id *wid*."""
        return self._texts[wid]

    def __len__(self) -> int:
        return len(self._texts)


class ColumnarPostings:
    """Delta/main columnar storage of integer posting rows grouped by key.

    ``columns`` names the per-row integer columns (the first one must be
    ``"sid"`` — :meth:`remove_sid` filters on it).  Keys are arbitrary
    hashable values interned to dense ids unless ``identity_keys`` is set,
    in which case keys must already be dense non-negative ints (hierarchy
    node ids).

    The *main* structure is one ``int64`` array per column, stably sorted
    by key id so each key's rows form one contiguous slice addressed by the
    ``_offsets`` table; within a key, main preserves insertion order (for
    monotonically assigned sentence ids that is exactly ``(sid, tid)``
    order).  The *delta* is a set of plain Python lists so a batch append
    is O(batch); it is merged into main once it outgrows
    ``max(4096, |main|)`` (amortised O(n log n) total).
    """

    def __init__(
        self, columns: Sequence[str], identity_keys: bool = False
    ) -> None:
        if not columns or columns[0] != "sid":
            raise ValueError("first column must be 'sid'")
        self.columns = tuple(columns)
        self._identity = identity_keys
        self._key_ids: dict[object, int] = {}
        self._keys: list[object] = []
        self._nkeys = 0
        self._main_kid = np.empty(0, _INT)
        self._main = tuple(np.empty(0, _INT) for _ in self.columns)
        self._offsets = np.zeros(1, _INT)
        self._delta_kid: list[int] = []
        self._delta = tuple([] for _ in self.columns)
        self._delta_cache: tuple[np.ndarray, tuple[np.ndarray, ...]] | None = None

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    def intern_key(self, key) -> int:
        """The dense id of *key*, assigning one on first sight."""
        if self._identity:
            kid = int(key)
            if kid < 0:
                raise ValueError(f"identity keys must be non-negative, got {key}")
            if kid >= self._nkeys:
                self._nkeys = kid + 1
            return kid
        kid = self._key_ids.get(key)
        if kid is None:
            kid = len(self._keys)
            self._key_ids[key] = kid
            self._keys.append(key)
            self._nkeys = kid + 1
        return kid

    def key_id(self, key) -> int | None:
        """The id of *key* if it was ever interned, else ``None``."""
        if self._identity:
            kid = int(key)
            return kid if 0 <= kid < self._nkeys else None
        return self._key_ids.get(key)

    def key_of(self, kid: int):
        """The key interned under id *kid* (identity stores return *kid*)."""
        return kid if self._identity else self._keys[kid]

    def ensure_key_capacity(self, nkeys: int) -> None:
        """Grow the key-id space of an identity-keyed store to *nkeys* ids.

        Batch writers that mint their own dense ids (hierarchy node ids)
        call this instead of interning every row's key individually.
        """
        if nkeys > self._nkeys:
            self._nkeys = nkeys

    def live_key_ids(self) -> list[int]:
        """Ids of keys that currently hold at least one row, ascending."""
        counts = np.zeros(self._nkeys, _INT)
        bounded = min(self._nkeys, len(self._offsets) - 1)
        if bounded > 0:
            counts[:bounded] = np.diff(self._offsets[: bounded + 1])
        if self._delta_kid:
            dkid, _ = self._delta_np()
            counts += np.bincount(dkid, minlength=self._nkeys)
        return np.flatnonzero(counts).tolist()

    # ------------------------------------------------------------------
    # writes (caller serialises; compaction happens only here)
    # ------------------------------------------------------------------
    def append_batch(self, kids: Sequence[int], cols: Sequence[Sequence[int]]) -> None:
        """Append rows keyed by *kids*, one parallel value list per column."""
        self._delta_kid.extend(kids)
        for store_col, new_col in zip(self._delta, cols):
            store_col.extend(new_col)
        self._delta_cache = None
        if len(self._delta_kid) > max(_MIN_COMPACT_ROWS, len(self._main_kid)):
            self.compact()

    def compact(self) -> None:
        """Merge the delta tail into the key-sorted main arrays."""
        if not self._delta_kid:
            return
        dkid, dcols = self._delta_np()
        kid = np.concatenate([self._main_kid, dkid])
        cols = [np.concatenate([m, d]) for m, d in zip(self._main, dcols)]
        order = np.argsort(kid, kind="stable")  # keeps per-key insertion order
        self._main_kid = kid[order]
        self._main = tuple(col[order] for col in cols)
        self._offsets = np.searchsorted(self._main_kid, np.arange(self._nkeys + 1))
        self._delta_kid = []
        self._delta = tuple([] for _ in self.columns)
        self._delta_cache = None

    def remove_sid(self, sid: int) -> None:
        """Drop every row whose sentence id equals *sid*."""
        self.compact()
        mask = self._main[0] != sid
        if mask.all():
            return
        self._main_kid = self._main_kid[mask]
        self._main = tuple(col[mask] for col in self._main)
        self._offsets = np.searchsorted(self._main_kid, np.arange(self._nkeys + 1))

    # ------------------------------------------------------------------
    # reads (never mutate main/delta; safe under concurrent readers)
    # ------------------------------------------------------------------
    @property
    def total_rows(self) -> int:
        """Number of stored rows (main + delta)."""
        return len(self._main_kid) + len(self._delta_kid)

    def key_count(self, kid: int) -> int:
        """Number of rows currently held by key id *kid*."""
        count = 0
        if 0 <= kid < len(self._offsets) - 1:
            count = int(self._offsets[kid + 1] - self._offsets[kid])
        if self._delta_kid:
            dkid, _ = self._delta_np()
            count += int(np.count_nonzero(dkid == kid))
        return count

    def arrays_for_key(self, kid: int) -> tuple[np.ndarray, ...]:
        """The column arrays of key id *kid* (main slice + delta rows)."""
        main_lo = main_hi = 0
        if 0 <= kid < len(self._offsets) - 1:
            main_lo, main_hi = int(self._offsets[kid]), int(self._offsets[kid + 1])
        if not self._delta_kid:
            return tuple(col[main_lo:main_hi] for col in self._main)
        dkid, dcols = self._delta_np()
        sel = dkid == kid
        if not sel.any():
            return tuple(col[main_lo:main_hi] for col in self._main)
        return tuple(
            np.concatenate([col[main_lo:main_hi], dcol[sel]])
            for col, dcol in zip(self._main, dcols)
        )

    def arrays_for_keys(self, kids: Sequence[int]) -> tuple[np.ndarray, ...]:
        """Concatenated column arrays of several key ids (in *kids* order)."""
        bounded = len(self._offsets) - 1
        ranges = [
            np.arange(self._offsets[kid], self._offsets[kid + 1])
            for kid in kids
            if 0 <= kid < bounded
        ]
        main_idx = (
            np.concatenate(ranges) if ranges else np.empty(0, _INT)
        )
        parts = tuple(col[main_idx] for col in self._main)
        if not self._delta_kid:
            return parts
        dkid, dcols = self._delta_np()
        sel = np.isin(dkid, np.asarray(list(kids), _INT))
        if not sel.any():
            return parts
        return tuple(
            np.concatenate([part, dcol[sel]]) for part, dcol in zip(parts, dcols)
        )

    def all_arrays(self) -> tuple[np.ndarray, ...]:
        """Every row's column arrays (main order, then delta order)."""
        if not self._delta_kid:
            return self._main
        _, dcols = self._delta_np()
        return tuple(
            np.concatenate([col, dcol]) for col, dcol in zip(self._main, dcols)
        )

    def all_arrays_with_keys(self) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
        """Like :meth:`all_arrays` but prefixed with the key-id array."""
        if not self._delta_kid:
            return self._main_kid, self._main
        dkid, dcols = self._delta_np()
        return (
            np.concatenate([self._main_kid, dkid]),
            tuple(np.concatenate([col, dcol]) for col, dcol in zip(self._main, dcols)),
        )

    def _delta_np(self) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
        cached = self._delta_cache
        if cached is None:
            cached = (
                np.asarray(self._delta_kid, _INT),
                tuple(np.asarray(col, _INT) for col in self._delta),
            )
            self._delta_cache = cached
        return cached


class PostingBlock:
    """Parallel ``(sid, tid, left, right, depth)`` arrays for one posting set.

    ``wid`` (optional, with its interner) carries the surface form so
    :meth:`materialize` can rebuild full :class:`Posting` objects lazily.
    """

    __slots__ = ("sid", "tid", "left", "right", "depth", "wid", "interner")

    def __init__(
        self,
        sid: np.ndarray,
        tid: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        depth: np.ndarray,
        wid: np.ndarray | None = None,
        interner: StringInterner | None = None,
    ) -> None:
        self.sid = sid
        self.tid = tid
        self.left = left
        self.right = right
        self.depth = depth
        self.wid = wid
        self.interner = interner

    @classmethod
    def empty(cls) -> "PostingBlock":
        """A block with no rows."""
        e = np.empty(0, _INT)
        return cls(e, e, e, e, e)

    @property
    def size(self) -> int:
        """Number of postings in the block."""
        return len(self.sid)

    def take(self, selector) -> "PostingBlock":
        """A new block holding the rows selected by a mask or index array."""
        return PostingBlock(
            self.sid[selector],
            self.tid[selector],
            self.left[selector],
            self.right[selector],
            self.depth[selector],
            self.wid[selector] if self.wid is not None else None,
            self.interner,
        )

    def sort_positional(self) -> "PostingBlock":
        """The same rows ordered by ``(sid, tid)``."""
        if self.size <= 1:
            return self
        return self.take(np.lexsort((self.tid, self.sid)))

    def unique_sids(self) -> np.ndarray:
        """Sorted distinct sentence ids of the block."""
        return np.unique(self.sid)

    def materialize(self) -> list[Posting]:
        """The block as a list of :class:`Posting` objects."""
        words: Iterator[str]
        if self.wid is not None and self.interner is not None:
            text = self.interner.text
            words = (text(w) for w in self.wid.tolist())
        else:
            words = ("" for _ in range(self.size))
        return [
            Posting(s, t, lo, hi, d, w)
            for s, t, lo, hi, d, w in zip(
                self.sid.tolist(),
                self.tid.tolist(),
                self.left.tolist(),
                self.right.tolist(),
                self.depth.tolist(),
                words,
            )
        ]


class PostingView(Sequence):
    """A lazily materialised, read-only :class:`Posting` sequence of a block."""

    __slots__ = ("_block", "_items")

    def __init__(self, block: PostingBlock) -> None:
        self._block = block
        self._items: list[Posting] | None = None

    def _materialized(self) -> list[Posting]:
        items = self._items
        if items is None:
            items = self._block.materialize()
            self._items = items
        return items

    def __len__(self) -> int:
        return self._block.size

    def __iter__(self):
        return iter(self._materialized())

    def __getitem__(self, index):
        return self._materialized()[index]

    def __eq__(self, other) -> bool:
        return list(self) == list(other) if isinstance(other, (list, PostingView)) else NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PostingView({self._block.size} postings)"


# ----------------------------------------------------------------------
# vectorized posting algebra (Section 4.2.2 as whole-array window ops)
# ----------------------------------------------------------------------
def _pair_indices(
    group_sids: np.ndarray, probe_sids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All (probe row, group row) index pairs sharing a sentence id.

    *group_sids* must be sorted ascending.  Returns parallel arrays
    ``(probe_idx, group_idx)`` enumerating, for every probe row, each group
    row of the same sentence — the vectorized equivalent of the per-sid
    bucket loops of the object-backed joins.
    """
    starts = np.searchsorted(group_sids, probe_sids, side="left")
    ends = np.searchsorted(group_sids, probe_sids, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        e = np.empty(0, _INT)
        return e, e
    probe_idx = np.repeat(np.arange(len(probe_sids)), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    group_idx = np.repeat(starts, counts) + (
        np.arange(total) - np.repeat(offsets[:-1], counts)
    )
    return probe_idx, group_idx


def join_ancestor_block(
    ancestors: PostingBlock, descendants: PostingBlock, min_gap: int = 1
) -> PostingBlock:
    """Descendant rows that have a qualifying ancestor (Section 4.2.2).

    Both blocks must be sorted by sentence id.  The ancestor axis is the
    window predicate ``anc.left <= d.left and d.right <= anc.right and
    d.depth >= anc.depth + min_gap`` evaluated over all same-sentence pairs
    at once.
    """
    if ancestors.size == 0 or descendants.size == 0:
        return PostingBlock.empty()
    d_idx, a_idx = _pair_indices(ancestors.sid, descendants.sid)
    if len(d_idx) == 0:
        return PostingBlock.empty()
    hit = (
        (ancestors.left[a_idx] <= descendants.left[d_idx])
        & (ancestors.right[a_idx] >= descendants.right[d_idx])
        & (descendants.depth[d_idx] >= ancestors.depth[a_idx] + min_gap)
    )
    kept = np.zeros(descendants.size, bool)
    kept[d_idx[hit]] = True
    return descendants.take(kept)


def join_same_token_block(left: PostingBlock, right: PostingBlock) -> PostingBlock:
    """Rows of *left* whose ``(sid, tid)`` token also appears in *right*."""
    if left.size == 0 or right.size == 0:
        return PostingBlock.empty()
    left_keys = left.sid * np.int64(2**32) + left.tid
    right_keys = right.sid * np.int64(2**32) + right.tid
    return left.take(np.isin(left_keys, right_keys))


def under_words_block(candidates: PostingBlock, words: PostingBlock) -> PostingBlock:
    """Candidates whose token is (or lies in the subtree of) a word posting."""
    if candidates.size == 0 or words.size == 0:
        return PostingBlock.empty()
    c_idx, w_idx = _pair_indices(words.sid, candidates.sid)
    if len(c_idx) == 0:
        return PostingBlock.empty()
    hit = (words.tid[w_idx] == candidates.tid[c_idx]) | (
        (words.left[w_idx] <= candidates.left[c_idx])
        & (candidates.right[c_idx] <= words.right[w_idx])
    )
    kept = np.zeros(candidates.size, bool)
    kept[c_idx[hit]] = True
    return candidates.take(kept)


def covers_block(covering: PostingBlock, covered: PostingBlock) -> np.ndarray:
    """Boolean mask over *covered*: has a same-sentence covering row.

    The vectorized form of :meth:`Posting.covers` — subtree containment
    as a pure interval predicate (no depth constraint).
    """
    if covering.size == 0 or covered.size == 0:
        return np.zeros(covered.size, bool)
    d_idx, a_idx = _pair_indices(covering.sid, covered.sid)
    if len(d_idx) == 0:
        return np.zeros(covered.size, bool)
    hit = (covering.left[a_idx] <= covered.left[d_idx]) & (
        covered.right[d_idx] <= covering.right[a_idx]
    )
    kept = np.zeros(covered.size, bool)
    kept[d_idx[hit]] = True
    return kept


def parent_of_block(parents: PostingBlock, children: PostingBlock) -> np.ndarray:
    """Boolean mask over *children*: has a same-sentence parent row.

    The vectorized parent test of Example 3.2: containment plus an exact
    ``depth == parent.depth + 1`` window predicate.
    """
    if parents.size == 0 or children.size == 0:
        return np.zeros(children.size, bool)
    c_idx, p_idx = _pair_indices(parents.sid, children.sid)
    if len(c_idx) == 0:
        return np.zeros(children.size, bool)
    hit = (
        (parents.left[p_idx] <= children.left[c_idx])
        & (parents.right[p_idx] >= children.right[c_idx])
        & (children.depth[c_idx] == parents.depth[p_idx] + 1)
    )
    kept = np.zeros(children.size, bool)
    kept[c_idx[hit]] = True
    return kept
