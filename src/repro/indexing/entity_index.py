"""The entity inverted index (Section 3.1).

Maps each entity-mention text to triples ``(x, u, v)``: sentence id plus the
leftmost and rightmost token ids of the mention span.  The index can also be
queried by entity type, which is how variables declared as ``x:Entity``,
``a:GPE`` or ``a:Person`` obtain their candidate bindings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nlp.types import Corpus, Sentence
from ..storage.database import Database
from ..storage.table import Schema


@dataclass(frozen=True, order=True)
class EntityPosting:
    """One entity occurrence: sentence id, span, type, and surface text."""

    sid: int
    left: int
    right: int
    etype: str
    text: str


class EntityIndex:
    """Inverted index over entity mentions."""

    def __init__(self) -> None:
        self._by_text: dict[str, list[EntityPosting]] = {}
        self._by_type: dict[str, list[EntityPosting]] = {}
        # keyed by sentence id so remove_sentence is one dict pop instead
        # of a rebuild of the whole corpus-wide posting list
        self._by_sid: dict[int, list[EntityPosting]] = {}
        self._count = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_sentence(self, sentence: Sentence) -> None:
        for mention in sentence.entities:
            posting = EntityPosting(
                sid=sentence.sid,
                left=mention.start,
                right=mention.end,
                etype=mention.etype,
                text=mention.text,
            )
            self._by_text.setdefault(mention.text.lower(), []).append(posting)
            self._by_type.setdefault(mention.etype, []).append(posting)
            self._by_sid.setdefault(sentence.sid, []).append(posting)
            self._count += 1

    def add_corpus(self, corpus: Corpus) -> None:
        for _, sentence in corpus.all_sentences():
            self.add_sentence(sentence)

    def remove_sentence(self, sentence: Sentence) -> None:
        """Remove every posting contributed by *sentence* (by sentence id)."""
        if not sentence.entities:
            return
        sid = sentence.sid
        for mention in sentence.entities:
            for mapping, key in (
                (self._by_text, mention.text.lower()),
                (self._by_type, mention.etype),
            ):
                bucket = mapping.get(key)
                if bucket is None:
                    continue
                bucket[:] = [p for p in bucket if p.sid != sid]
                if not bucket:
                    del mapping[key]
        self._count -= len(self._by_sid.pop(sid, ()))

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup_text(self, text: str) -> list[EntityPosting]:
        """All occurrences of the entity whose surface text is *text*."""
        return list(self._by_text.get(text.lower(), ()))

    def lookup_type(self, etype: str) -> list[EntityPosting]:
        """All occurrences of entities of type *etype*.

        The pseudo-type ``"Entity"`` returns every mention regardless of type.
        """
        if etype.lower() == "entity":
            return self.all_postings()
        key = self._canonical_type(etype)
        return list(self._by_type.get(key, ()))

    def all_postings(self) -> list[EntityPosting]:
        return [posting for bucket in self._by_sid.values() for posting in bucket]

    def __len__(self) -> int:
        return self._count

    @staticmethod
    def _canonical_type(etype: str) -> str:
        mapping = {
            "person": "PERSON",
            "gpe": "GPE",
            "location": "LOCATION",
            "organization": "ORGANIZATION",
            "org": "ORGANIZATION",
            "date": "DATE",
            "facility": "FACILITY",
            "team": "TEAM",
            "other": "OTHER",
        }
        return mapping.get(etype.lower(), etype.upper())

    # ------------------------------------------------------------------
    # materialisation (the E relation of Section 6.2.1)
    # ------------------------------------------------------------------
    E_SCHEMA = Schema.of("entity", "x", "u", "v", "etype")

    def to_table(self, database: Database, table_name: str = "E", create_indexes: bool = True):
        """Materialise the index into *database* with the paper's E schema.

        ``create_indexes=False`` skips the secondary B-trees — used by the
        snapshot path, whose only reader (:meth:`from_table`) scans rows.
        """
        if database.has_table(table_name):
            database.drop_table(table_name)
        table = database.create_table(table_name, self.E_SCHEMA)
        for posting in self.all_postings():
            table.insert(
                (posting.text.lower(), posting.sid, posting.left, posting.right, posting.etype)
            )
        if create_indexes:
            table.create_index("by_entity", "entity")
            table.create_index("by_sentence", "x")
        return table

    @classmethod
    def from_table(
        cls,
        database: Database,
        table_name: str = "E",
        mention_texts: dict[tuple[int, int, int], str] | None = None,
    ) -> "EntityIndex":
        """Rebuild an entity index from an ``E`` relation written by :meth:`to_table`.

        ``mention_texts`` maps ``(sid, start, end)`` to the original-case
        mention text (the E relation stores the lower-cased form).  Rows were
        written in sentence-id bucket order, which is ingest order, so the
        rebuilt per-text/per-type posting lists keep their original order.
        """
        mention_texts = mention_texts or {}
        index = cls()
        for entity, sid, left, right, etype in database.table(table_name):
            posting = EntityPosting(
                sid=sid,
                left=left,
                right=right,
                etype=etype,
                text=mention_texts.get((sid, left, right), entity),
            )
            index._by_text.setdefault(entity, []).append(posting)
            index._by_type.setdefault(etype, []).append(posting)
            index._by_sid.setdefault(sid, []).append(posting)
            index._count += 1
        return index
