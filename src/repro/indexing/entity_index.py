"""The entity inverted index (Section 3.1).

Maps each entity-mention text to triples ``(x, u, v)``: sentence id plus the
leftmost and rightmost token ids of the mention span.  The index can also be
queried by entity type, which is how variables declared as ``x:Entity``,
``a:GPE`` or ``a:Person`` obtain their candidate bindings.

With ``columnar=True`` the posting rows ``(sid, left, right, text, etype)``
live in two :class:`~repro.indexing.columnar.ColumnarPostings` stores — one
keyed by lower-cased mention text, one by mention type — with the string
payloads interned, so type lookups hand the query planner whole sentence-id
arrays instead of Python object lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..nlp.types import Corpus, Sentence
from ..storage.database import Database
from ..storage.table import Schema
from .columnar import ColumnarPostings, StringInterner

_E_COLUMNS = ("sid", "left", "right", "text_id", "etype_id")


@dataclass(frozen=True, order=True)
class EntityPosting:
    """One entity occurrence: sentence id, span, type, and surface text."""

    sid: int
    left: int
    right: int
    etype: str
    text: str


class _EntityView(Sequence):
    """Lazily materialised, read-only list of :class:`EntityPosting` rows."""

    __slots__ = ("_arrays", "_strings", "_items")

    def __init__(
        self, arrays: tuple[np.ndarray, ...], strings: StringInterner
    ) -> None:
        self._arrays = arrays
        self._strings = strings
        self._items: list[EntityPosting] | None = None

    def _materialized(self) -> list[EntityPosting]:
        items = self._items
        if items is None:
            text = self._strings.text
            sids, lefts, rights, text_ids, etype_ids = self._arrays
            items = [
                EntityPosting(s, lo, hi, text(e), text(t))
                for s, lo, hi, t, e in zip(
                    sids.tolist(),
                    lefts.tolist(),
                    rights.tolist(),
                    text_ids.tolist(),
                    etype_ids.tolist(),
                )
            ]
            self._items = items
        return items

    def __len__(self) -> int:
        return len(self._arrays[0])

    def __iter__(self):
        return iter(self._materialized())

    def __getitem__(self, index):
        return self._materialized()[index]


class EntityIndex:
    """Inverted index over entity mentions."""

    def __init__(self, columnar: bool = False) -> None:
        self.columnar = columnar
        self._by_text: dict[str, list[EntityPosting]] = {}
        self._by_type: dict[str, list[EntityPosting]] = {}
        # keyed by sentence id so remove_sentence is one dict pop instead
        # of a rebuild of the whole corpus-wide posting list
        self._by_sid: dict[int, list[EntityPosting]] = {}
        self._count = 0
        self._strings = StringInterner() if columnar else None
        self._store_text = ColumnarPostings(_E_COLUMNS) if columnar else None
        self._store_type = ColumnarPostings(_E_COLUMNS) if columnar else None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_sentence(self, sentence: Sentence) -> None:
        if self.columnar:
            mentions = sentence.entities
            if not mentions:
                return
            self._append_rows(
                sentence.sid,
                [(m.start, m.end, m.etype, m.text) for m in mentions],
            )
            return
        for mention in sentence.entities:
            posting = EntityPosting(
                sid=sentence.sid,
                left=mention.start,
                right=mention.end,
                etype=mention.etype,
                text=mention.text,
            )
            self._by_text.setdefault(mention.text.lower(), []).append(posting)
            self._by_type.setdefault(mention.etype, []).append(posting)
            self._by_sid.setdefault(sentence.sid, []).append(posting)
            self._count += 1

    def add_rows(
        self,
        sids: list[int],
        lefts: list[int],
        rights: list[int],
        etypes: list[str],
        texts: list[str],
    ) -> None:
        """Columnar splice: append mention rows (spanning any number of
        sentences, in ``(sid, position)`` order) to both keyed stores."""
        intern_many = self._strings.intern_many
        etype_ids = intern_many(etypes)
        text_ids = intern_many(texts)
        columns = (sids, lefts, rights, text_ids, etype_ids)
        store_text = self._store_text
        store_type = self._store_type
        store_text.append_batch(
            [store_text.intern_key(text.lower()) for text in texts], columns
        )
        store_type.append_batch(
            [store_type.intern_key(etype) for etype in etypes], columns
        )

    def _append_rows(self, sid: int, rows: list[tuple[int, int, str, str]]) -> None:
        """Columnar splice: append one sentence's mention rows."""
        self.add_rows(
            [sid] * len(rows),
            [row[0] for row in rows],
            [row[1] for row in rows],
            [row[2] for row in rows],
            [row[3] for row in rows],
        )

    def add_corpus(self, corpus: Corpus) -> None:
        for _, sentence in corpus.all_sentences():
            self.add_sentence(sentence)

    def remove_sentence(self, sentence: Sentence) -> None:
        """Remove every posting contributed by *sentence* (by sentence id)."""
        if not sentence.entities:
            return
        sid = sentence.sid
        if self.columnar:
            self._store_text.remove_sid(sid)
            self._store_type.remove_sid(sid)
            return
        for mention in sentence.entities:
            for mapping, key in (
                (self._by_text, mention.text.lower()),
                (self._by_type, mention.etype),
            ):
                bucket = mapping.get(key)
                if bucket is None:
                    continue
                bucket[:] = [p for p in bucket if p.sid != sid]
                if not bucket:
                    del mapping[key]
        self._count -= len(self._by_sid.pop(sid, ()))

    # ------------------------------------------------------------------
    # conversion (object-backed -> columnar, used on snapshot restore)
    # ------------------------------------------------------------------
    @classmethod
    def from_object(cls, source: "EntityIndex") -> "EntityIndex":
        """A columnar copy of an object-backed index (same posting multiset)."""
        assert not source.columnar, "source is already columnar"
        index = cls(columnar=True)
        for sid, bucket in source._by_sid.items():
            index._append_rows(sid, [(p.left, p.right, p.etype, p.text) for p in bucket])
        index._store_text.compact()
        index._store_type.compact()
        return index

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup_text(self, text: str) -> list[EntityPosting]:
        """All occurrences of the entity whose surface text is *text*."""
        if self.columnar:
            kid = self._store_text.key_id(text.lower())
            if kid is None:
                return []
            return list(
                _EntityView(self._store_text.arrays_for_key(kid), self._strings)
            )
        return list(self._by_text.get(text.lower(), ()))

    def lookup_type(self, etype: str) -> list[EntityPosting]:
        """All occurrences of entities of type *etype*.

        The pseudo-type ``"Entity"`` returns every mention regardless of type.
        """
        if self.columnar:
            _, view = self.lookup_type_block(etype)
            return list(view)
        if etype.lower() == "entity":
            return self.all_postings()
        key = self._canonical_type(etype)
        return list(self._by_type.get(key, ()))

    def lookup_type_block(self, etype: str) -> tuple[np.ndarray, Sequence]:
        """Columnar type lookup: the sid column plus a lazy posting view."""
        store = self._store_type
        assert store is not None, "lookup_type_block requires columnar=True"
        if etype.lower() == "entity":
            arrays = store.all_arrays()
        else:
            kid = store.key_id(self._canonical_type(etype))
            if kid is None:
                arrays = tuple(np.empty(0, np.int64) for _ in _E_COLUMNS)
            else:
                arrays = store.arrays_for_key(kid)
        return arrays[0], _EntityView(arrays, self._strings)

    def all_postings(self) -> list[EntityPosting]:
        if self.columnar:
            return list(_EntityView(self._store_type.all_arrays(), self._strings))
        return [posting for bucket in self._by_sid.values() for posting in bucket]

    def __len__(self) -> int:
        if self.columnar:
            return self._store_type.total_rows
        return self._count

    @staticmethod
    def _canonical_type(etype: str) -> str:
        mapping = {
            "person": "PERSON",
            "gpe": "GPE",
            "location": "LOCATION",
            "organization": "ORGANIZATION",
            "org": "ORGANIZATION",
            "date": "DATE",
            "facility": "FACILITY",
            "team": "TEAM",
            "other": "OTHER",
        }
        return mapping.get(etype.lower(), etype.upper())

    # ------------------------------------------------------------------
    # materialisation (the E relation of Section 6.2.1)
    # ------------------------------------------------------------------
    E_SCHEMA = Schema.of("entity", "x", "u", "v", "etype")

    def to_table(self, database: Database, table_name: str = "E", create_indexes: bool = True):
        """Materialise the index into *database* with the paper's E schema.

        ``create_indexes=False`` skips the secondary B-trees — used by the
        snapshot path, whose only reader (:meth:`from_table`) scans rows.
        """
        if database.has_table(table_name):
            database.drop_table(table_name)
        table = database.create_table(table_name, self.E_SCHEMA)
        for posting in self.all_postings():
            table.insert(
                (posting.text.lower(), posting.sid, posting.left, posting.right, posting.etype)
            )
        if create_indexes:
            table.create_index("by_entity", "entity")
            table.create_index("by_sentence", "x")
        return table

    @classmethod
    def from_table(
        cls,
        database: Database,
        table_name: str = "E",
        mention_texts: dict[tuple[int, int, int], str] | None = None,
    ) -> "EntityIndex":
        """Rebuild an entity index from an ``E`` relation written by :meth:`to_table`.

        ``mention_texts`` maps ``(sid, start, end)`` to the original-case
        mention text (the E relation stores the lower-cased form).  Rows were
        written in sentence-id bucket order, which is ingest order, so the
        rebuilt per-text/per-type posting lists keep their original order.
        The rebuilt index is object-backed; convert with :meth:`from_object`
        if the owner runs columnar.
        """
        mention_texts = mention_texts or {}
        index = cls()
        for entity, sid, left, right, etype in database.table(table_name):
            posting = EntityPosting(
                sid=sid,
                left=left,
                right=right,
                etype=etype,
                text=mention_texts.get((sid, left, right), entity),
            )
            index._by_text.setdefault(entity, []).append(posting)
            index._by_type.setdefault(etype, []).append(posting)
            index._by_sid.setdefault(sid, []).append(posting)
            index._count += 1
        return index
