"""A writer-preferring readers-writer lock for the service layer.

Queries only read the corpus and indexes, so any number of them may run
concurrently; ingestion mutates all four indexes and must run alone.  The
lock prefers writers: once an ingest is waiting, new queries queue behind
it, so a steady query stream cannot starve ingestion.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Many concurrent readers XOR one writer; waiting writers get priority."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    # reader side
    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        """Take a shared read slot (blocks while a writer runs or waits)."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Release one read slot, waking a waiting writer when last out."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Context manager holding a read slot for the ``with`` body."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # ------------------------------------------------------------------
    # writer side
    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        """Take the exclusive write slot (queues ahead of new readers)."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._readers or self._writer_active:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        """Release the write slot, waking every waiter."""
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Context manager holding the write slot for the ``with`` body."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
