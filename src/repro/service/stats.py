"""Operational metrics for :class:`~repro.service.KokoService`.

``ServiceStats`` aggregates the numbers an operator of a query-serving
deployment watches: cache hit rates, ingest throughput, query latency
percentiles (over a sliding window of recent queries, so a long-lived
service reports current — not lifetime-averaged — latency), a per-shard
breakdown of query work and document routing for partitioned services,
and durability counters — WAL appends, group-commit batch sizes (how many
records each fsync made durable, bucketed into a power-of-two histogram)
and the fsyncs saved relative to one-fsync-per-record.
"""

from __future__ import annotations

import math
import threading
from collections import deque

__all__ = ["ServiceStats"]


class ServiceStats:
    """Thread-safe counters and latency window for one service instance."""

    def __init__(self, latency_window: int = 2048) -> None:
        self._lock = threading.Lock()
        self.queries_served = 0
        self.result_cache_hits = 0
        self.result_cache_misses = 0
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.documents_added = 0
        self.documents_removed = 0
        self.sentences_ingested = 0
        self.tokens_ingested = 0
        self.ingest_seconds = 0.0
        self.removal_seconds = 0.0
        self._latencies: deque[float] = deque(maxlen=latency_window)
        # per-shard breakdown (keys appear as shards are touched)
        self.shard_queries: dict[int, int] = {}
        self.shard_query_seconds: dict[int, float] = {}
        self.shard_documents_added: dict[int, int] = {}
        self.shard_documents_removed: dict[int, int] = {}
        # per-shard partial-result cache (generation-stamped per shard)
        self.shard_partials_reused = 0
        self.shard_partials_computed = 0
        # per-shard result-cache accounting (feeds cache sizing decisions)
        self.shard_cache_hits: dict[int, int] = {}
        self.shard_cache_misses: dict[int, int] = {}
        self.shard_cache_stale_evictions: dict[int, int] = {}
        self.shard_cache_lru_evictions: dict[int, int] = {}
        # full-result cache evictions (stale = generation turnover, lru = capacity)
        self.result_cache_stale_evictions = 0
        self.result_cache_lru_evictions = 0
        # ingest admission control (max_inflight_ingest_bytes)
        self.ingest_backpressure_waits = 0
        # durability: write-ahead log, group commit, checkpoints, recovery
        self.wal_records_appended = 0
        self.wal_bytes_appended = 0
        self.wal_fsyncs = 0
        self.wal_records_synced = 0
        self.wal_max_batch = 0
        # batch-size histogram: bucket = smallest power of two >= batch
        self.wal_batch_histogram: dict[int, int] = {}
        self.checkpoints_completed = 0
        self.checkpoint_failures = 0
        self.last_checkpoint_error = ""
        self.checkpoint_seconds = 0.0
        self.last_checkpoint_id = 0
        self.recovery_seconds = 0.0
        self.recovered_documents = 0
        self.replayed_wal_records = 0
        self.recovered_torn_tail = False

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_query(
        self,
        seconds: float,
        *,
        result_cache_hit: bool | None = False,
        plan_cache_hit: bool | None = None,
    ) -> None:
        """Account one served query.

        ``None`` for either flag means that cache was bypassed (the query
        arrived pre-parsed), which counts toward neither hit nor miss — so
        hit rates reflect only queries the caches could have served.
        """
        with self._lock:
            self.queries_served += 1
            self._latencies.append(seconds)
            if result_cache_hit is True:
                self.result_cache_hits += 1
            elif result_cache_hit is False:
                self.result_cache_misses += 1
            if plan_cache_hit is True:
                self.plan_cache_hits += 1
            elif plan_cache_hit is False:
                self.plan_cache_misses += 1

    def record_ingest(
        self,
        seconds: float,
        sentences: int,
        tokens: int,
        *,
        removed: bool = False,
        shard: int | None = None,
    ) -> None:
        """Account one document added to (or removed from) the corpus.

        ``shard`` attributes the operation to one partition of a sharded
        service; ``None`` (e.g. in unit tests of the stats object itself)
        records no per-shard routing.
        """
        with self._lock:
            if removed:
                self.documents_removed += 1
                self.removal_seconds += seconds
                if shard is not None:
                    self.shard_documents_removed[shard] = (
                        self.shard_documents_removed.get(shard, 0) + 1
                    )
            else:
                self.documents_added += 1
                self.sentences_ingested += sentences
                self.tokens_ingested += tokens
                self.ingest_seconds += seconds
                if shard is not None:
                    self.shard_documents_added[shard] = (
                        self.shard_documents_added.get(shard, 0) + 1
                    )

    def record_shard_query(self, shard: int, seconds: float) -> None:
        """Account one per-shard execution of a fanned-out (or single) query."""
        with self._lock:
            self.shard_queries[shard] = self.shard_queries.get(shard, 0) + 1
            self.shard_query_seconds[shard] = (
                self.shard_query_seconds.get(shard, 0.0) + seconds
            )

    def record_shard_partial(self, *, reused: bool, shard: int | None = None) -> None:
        """Account one shard partial served from (or stored into) its cache.

        With ``shard`` given, the event also lands in that shard's
        hit/miss breakdown (reused = a cache hit for the shard).
        """
        with self._lock:
            if reused:
                self.shard_partials_reused += 1
                if shard is not None:
                    self.shard_cache_hits[shard] = self.shard_cache_hits.get(shard, 0) + 1
            else:
                self.shard_partials_computed += 1
                if shard is not None:
                    self.shard_cache_misses[shard] = (
                        self.shard_cache_misses.get(shard, 0) + 1
                    )

    def record_shard_cache_eviction(self, shard: int, *, stale: bool) -> None:
        """Account one eviction from shard *shard*'s partial-result cache."""
        with self._lock:
            if stale:
                self.shard_cache_stale_evictions[shard] = (
                    self.shard_cache_stale_evictions.get(shard, 0) + 1
                )
            else:
                self.shard_cache_lru_evictions[shard] = (
                    self.shard_cache_lru_evictions.get(shard, 0) + 1
                )

    def record_result_cache_eviction(self, stale: bool) -> None:
        """Account one eviction from the full-result cache."""
        with self._lock:
            if stale:
                self.result_cache_stale_evictions += 1
            else:
                self.result_cache_lru_evictions += 1

    def record_backpressure_wait(self) -> None:
        """Account one ingest claim that blocked on the in-flight bytes bound."""
        with self._lock:
            self.ingest_backpressure_waits += 1

    def record_wal_append(self, frame_bytes: int) -> None:
        """Account one operation made durable in the write-ahead log."""
        with self._lock:
            self.wal_records_appended += 1
            self.wal_bytes_appended += frame_bytes

    def record_wal_fsync(self, batch: int) -> None:
        """Account one group-commit fsync that made *batch* records durable."""
        with self._lock:
            self.wal_fsyncs += 1
            self.wal_records_synced += batch
            self.wal_max_batch = max(self.wal_max_batch, batch)
            bucket = 1 << max(0, batch - 1).bit_length() if batch > 1 else 1
            self.wal_batch_histogram[bucket] = (
                self.wal_batch_histogram.get(bucket, 0) + 1
            )

    def record_checkpoint(self, seconds: float, checkpoint_id: int) -> None:
        """Account one completed snapshot checkpoint."""
        with self._lock:
            self.checkpoints_completed += 1
            self.checkpoint_seconds += seconds
            self.last_checkpoint_id = checkpoint_id

    def record_checkpoint_failure(self, error: str) -> None:
        """Account one failed background checkpoint (WAL keeps growing)."""
        with self._lock:
            self.checkpoint_failures += 1
            self.last_checkpoint_error = error

    def record_recovery(
        self, seconds: float, *, documents: int, replayed: int, torn_tail: bool
    ) -> None:
        """Account the warm restart that produced this service instance."""
        with self._lock:
            self.recovery_seconds = seconds
            self.recovered_documents = documents
            self.replayed_wal_records = replayed
            self.recovered_torn_tail = torn_tail

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def result_cache_hit_rate(self) -> float:
        """Fraction of cacheable queries served from the result cache."""
        total = self.result_cache_hits + self.result_cache_misses
        return self.result_cache_hits / total if total else 0.0

    @property
    def plan_cache_hit_rate(self) -> float:
        """Fraction of string queries whose plan was already compiled."""
        total = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / total if total else 0.0

    @property
    def wal_fsyncs_saved(self) -> int:
        """Records committed minus fsyncs performed (the group-commit win)."""
        return self.wal_records_synced - self.wal_fsyncs

    @property
    def wal_mean_batch(self) -> float:
        """Mean number of records per group-commit fsync."""
        return self.wal_records_synced / self.wal_fsyncs if self.wal_fsyncs else 0.0

    @property
    def ingest_tokens_per_second(self) -> float:
        """Lifetime ingest throughput in annotated tokens per second."""
        if self.ingest_seconds <= 0.0:
            return 0.0
        return self.tokens_ingested / self.ingest_seconds

    def latency_percentile(self, percentile: float) -> float:
        """Nearest-rank percentile (e.g. 50, 95) over the latency window."""
        if not 0.0 < percentile <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        with self._lock:
            window = sorted(self._latencies)
        if not window:
            return 0.0
        rank = max(1, math.ceil(percentile / 100.0 * len(window)))
        return window[rank - 1]

    @property
    def p50_query_seconds(self) -> float:
        """Median query latency over the sliding window."""
        return self.latency_percentile(50.0)

    @property
    def p95_query_seconds(self) -> float:
        """95th-percentile query latency over the sliding window."""
        return self.latency_percentile(95.0)

    def shard_breakdown(self) -> dict[int, dict[str, float | int]]:
        """Per-shard queries, execution seconds and document routing."""
        with self._lock:
            shards = (
                set(self.shard_queries)
                | set(self.shard_documents_added)
                | set(self.shard_documents_removed)
            )
            return {
                shard: {
                    "queries": self.shard_queries.get(shard, 0),
                    "query_seconds": self.shard_query_seconds.get(shard, 0.0),
                    "documents_added": self.shard_documents_added.get(shard, 0),
                    "documents_removed": self.shard_documents_removed.get(shard, 0),
                }
                for shard in sorted(shards)
            }

    def shard_cache_breakdown(self) -> dict[int, dict[str, int]]:
        """Per-shard result-cache hit/miss/eviction counters.

        The raw material of the cache-sizing question: a shard with high
        misses and high lru evictions wants a bigger partial cache; high
        stale evictions mean ingest churn, which no capacity fixes.
        """
        with self._lock:
            shards = (
                set(self.shard_cache_hits)
                | set(self.shard_cache_misses)
                | set(self.shard_cache_stale_evictions)
                | set(self.shard_cache_lru_evictions)
            )
            return {
                shard: {
                    "hits": self.shard_cache_hits.get(shard, 0),
                    "misses": self.shard_cache_misses.get(shard, 0),
                    "stale_evictions": self.shard_cache_stale_evictions.get(shard, 0),
                    "lru_evictions": self.shard_cache_lru_evictions.get(shard, 0),
                }
                for shard in sorted(shards)
            }

    def snapshot(self) -> dict[str, object]:
        """A point-in-time dict of every metric (for logs / benchmarks)."""
        with self._lock:
            # copy under the lock: group-commit leaders insert histogram
            # buckets concurrently
            batch_histogram = dict(sorted(self.wal_batch_histogram.items()))
        return {
            "queries_served": self.queries_served,
            "result_cache_hits": self.result_cache_hits,
            "result_cache_misses": self.result_cache_misses,
            "result_cache_hit_rate": self.result_cache_hit_rate,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "plan_cache_hit_rate": self.plan_cache_hit_rate,
            "documents_added": self.documents_added,
            "documents_removed": self.documents_removed,
            "sentences_ingested": self.sentences_ingested,
            "tokens_ingested": self.tokens_ingested,
            "ingest_seconds": self.ingest_seconds,
            "removal_seconds": self.removal_seconds,
            "ingest_tokens_per_second": self.ingest_tokens_per_second,
            "p50_query_seconds": self.p50_query_seconds,
            "p95_query_seconds": self.p95_query_seconds,
            "per_shard": self.shard_breakdown(),
            "shard_partials_reused": self.shard_partials_reused,
            "shard_partials_computed": self.shard_partials_computed,
            "per_shard_result_cache": self.shard_cache_breakdown(),
            "result_cache_stale_evictions": self.result_cache_stale_evictions,
            "result_cache_lru_evictions": self.result_cache_lru_evictions,
            "ingest_backpressure_waits": self.ingest_backpressure_waits,
            "durability": {
                "wal_records_appended": self.wal_records_appended,
                "wal_bytes_appended": self.wal_bytes_appended,
                "wal_fsyncs": self.wal_fsyncs,
                "wal_records_synced": self.wal_records_synced,
                "wal_fsyncs_saved": self.wal_fsyncs_saved,
                "wal_mean_batch": self.wal_mean_batch,
                "wal_max_batch": self.wal_max_batch,
                "wal_batch_histogram": batch_histogram,
                "checkpoints_completed": self.checkpoints_completed,
                "checkpoint_failures": self.checkpoint_failures,
                "last_checkpoint_error": self.last_checkpoint_error,
                "checkpoint_seconds": self.checkpoint_seconds,
                "last_checkpoint_id": self.last_checkpoint_id,
                "recovery_seconds": self.recovery_seconds,
                "recovered_documents": self.recovered_documents,
                "replayed_wal_records": self.replayed_wal_records,
                "recovered_torn_tail": self.recovered_torn_tail,
            },
        }
