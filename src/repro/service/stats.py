"""Operational metrics for :class:`~repro.service.KokoService`.

``ServiceStats`` aggregates the numbers an operator of a query-serving
deployment watches: cache hit rates, ingest throughput, query latency
percentiles (p50/p95/p99 estimated straight from the power-of-two
latency histogram via
:func:`~repro.observability.metrics.histogram_quantiles` — no
per-observation sample buffer to size or lock), a per-shard breakdown
of query work and document routing for partitioned services, and
durability counters — WAL appends, group-commit batch sizes (how many
records each fsync made durable, bucketed into a power-of-two histogram)
and the fsyncs saved relative to one-fsync-per-record.

Every number is backed by an instrument in a
:class:`~repro.observability.metrics.MetricsRegistry` (exposed as
``stats.registry``), so the whole set renders as Prometheus text or JSON
via ``registry.render_text()`` / ``registry.render_json()`` — and other
components (WAL shipper, replica applier) can register their own gauges
into the *same* registry for one unified exposition.  The historical
attribute API (``stats.queries_served``, ``stats.shard_queries`` …) is
kept as a read-only façade over those instruments, so existing callers,
tests and benchmarks are unaffected.  Per-shard breakdowns are read as
one atomic cut per metric family (they used to be racy attribute-by-
attribute reads of dicts mutated under a different lock).
"""

from __future__ import annotations

import threading
import time

from ..observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantiles,
)

__all__ = ["ServiceStats"]


class ServiceStats:
    """Thread-safe counters and latency percentiles for one service.

    ``registry`` (optional) lets several components share one
    :class:`~repro.observability.metrics.MetricsRegistry`; by default
    each stats object owns a fresh registry so independent services
    never mix counters.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._lock = threading.Lock()
        self.last_checkpoint_error = ""
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        # --- query / cache path -------------------------------------
        self._queries_served = r.counter(
            "koko_queries_served_total", "Queries served (string and pre-compiled)."
        )
        self._query_latency = r.histogram(
            "koko_query_latency_seconds", "End-to-end query latency."
        )
        self._result_cache_hits = r.counter(
            "koko_result_cache_hits_total", "Full-result cache hits."
        )
        self._result_cache_misses = r.counter(
            "koko_result_cache_misses_total", "Full-result cache misses."
        )
        self._plan_cache_hits = r.counter(
            "koko_plan_cache_hits_total", "Compiled-plan cache hits."
        )
        self._plan_cache_misses = r.counter(
            "koko_plan_cache_misses_total", "Compiled-plan cache misses."
        )
        self._result_cache_evictions = r.counter(
            "koko_result_cache_evictions_total",
            "Full-result cache evictions (stale = generation turnover).",
            labelnames=("reason",),
        )
        self._result_cache_admission_skips = r.counter(
            "koko_result_cache_admission_skips_total",
            "Results refused by cost-aware cache admission (oversize).",
        )
        # --- ingest path --------------------------------------------
        self._documents_added = r.counter(
            "koko_documents_added_total", "Documents ingested."
        )
        self._documents_removed = r.counter(
            "koko_documents_removed_total", "Documents removed."
        )
        self._sentences_ingested = r.counter(
            "koko_sentences_ingested_total", "Sentences ingested."
        )
        self._tokens_ingested = r.counter(
            "koko_tokens_ingested_total", "Annotated tokens ingested."
        )
        self._ingest_seconds = r.counter(
            "koko_ingest_seconds_total", "Wall seconds spent adding documents."
        )
        self._removal_seconds = r.counter(
            "koko_removal_seconds_total", "Wall seconds spent removing documents."
        )
        self._backpressure_waits = r.counter(
            "koko_ingest_backpressure_waits_total",
            "Ingest claims that blocked on the in-flight bytes bound.",
        )
        # --- per-shard breakdown (keys appear as shards are touched) -
        self._shard_queries = r.counter(
            "koko_shard_queries_total", "Per-shard query executions.", ("shard",)
        )
        self._shard_query_seconds = r.counter(
            "koko_shard_query_seconds_total", "Per-shard execution seconds.", ("shard",)
        )
        self._shard_documents_added = r.counter(
            "koko_shard_documents_added_total", "Per-shard document routing.", ("shard",)
        )
        self._shard_documents_removed = r.counter(
            "koko_shard_documents_removed_total", "Per-shard removals.", ("shard",)
        )
        self._shard_partials_reused = r.counter(
            "koko_shard_partials_reused_total",
            "Shard partial results served from the partial cache.",
        )
        self._shard_partials_computed = r.counter(
            "koko_shard_partials_computed_total",
            "Shard partial results computed (partial-cache misses).",
        )
        self._shard_cache_hits = r.counter(
            "koko_shard_cache_hits_total", "Per-shard partial-cache hits.", ("shard",)
        )
        self._shard_cache_misses = r.counter(
            "koko_shard_cache_misses_total", "Per-shard partial-cache misses.", ("shard",)
        )
        self._shard_cache_stale_evictions = r.counter(
            "koko_shard_cache_stale_evictions_total",
            "Per-shard partial-cache generation evictions.",
            ("shard",),
        )
        self._shard_cache_lru_evictions = r.counter(
            "koko_shard_cache_lru_evictions_total",
            "Per-shard partial-cache capacity evictions.",
            ("shard",),
        )
        self._shard_cache_admission_skips = r.counter(
            "koko_shard_cache_admission_skips_total",
            "Per-shard partials refused by cost-aware cache admission.",
            ("shard",),
        )
        # --- durability: WAL, group commit, checkpoints, recovery ----
        self._wal_records_appended = r.counter(
            "koko_wal_records_appended_total", "Records appended to the WAL."
        )
        self._wal_bytes_appended = r.counter(
            "koko_wal_bytes_appended_total", "Framed bytes appended to the WAL."
        )
        self._wal_fsyncs = r.counter(
            "koko_wal_fsyncs_total", "Group-commit fsyncs performed."
        )
        self._wal_records_synced = r.counter(
            "koko_wal_records_synced_total", "Records made durable by fsyncs."
        )
        self._wal_max_batch = r.gauge(
            "koko_wal_max_batch_records", "Largest group-commit batch observed."
        )
        self._wal_batch_histogram = r.histogram(
            "koko_wal_batch_records",
            "Group-commit batch sizes (power-of-two buckets).",
        )
        self._checkpoints_completed = r.counter(
            "koko_checkpoints_completed_total", "Snapshot checkpoints completed."
        )
        self._checkpoint_failures = r.counter(
            "koko_checkpoint_failures_total", "Background checkpoints that failed."
        )
        self._checkpoint_seconds = r.counter(
            "koko_checkpoint_seconds_total", "Wall seconds spent checkpointing."
        )
        self._last_checkpoint_id = r.gauge(
            "koko_last_checkpoint_id", "Id of the newest durable checkpoint."
        )
        self._checkpoint_in_progress = r.gauge(
            "koko_checkpoint_in_progress",
            "1 while a checkpoint is running (a stuck checkpointer pins this at 1).",
        )
        self._last_checkpoint_unix = r.gauge(
            "koko_last_checkpoint_unix",
            "Unix time of the last completed checkpoint (0 = none yet).",
        )
        self._recovery_seconds = r.gauge(
            "koko_recovery_seconds", "Wall seconds the warm restart took."
        )
        self._recovered_documents = r.gauge(
            "koko_recovered_documents", "Documents restored by the warm restart."
        )
        self._replayed_wal_records = r.gauge(
            "koko_replayed_wal_records", "WAL records replayed on recovery."
        )
        self._recovered_torn_tail = r.gauge(
            "koko_recovered_torn_tail", "1 when recovery truncated a torn WAL tail."
        )

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_query(
        self,
        seconds: float,
        *,
        result_cache_hit: bool | None = False,
        plan_cache_hit: bool | None = None,
    ) -> None:
        """Account one served query.

        ``None`` for either flag means that cache was bypassed (the query
        arrived pre-parsed), which counts toward neither hit nor miss — so
        hit rates reflect only queries the caches could have served.
        """
        self._queries_served.inc()
        self._query_latency.observe(float(seconds))
        if result_cache_hit is True:
            self._result_cache_hits.inc()
        elif result_cache_hit is False:
            self._result_cache_misses.inc()
        if plan_cache_hit is True:
            self._plan_cache_hits.inc()
        elif plan_cache_hit is False:
            self._plan_cache_misses.inc()

    def record_ingest(
        self,
        seconds: float,
        sentences: int,
        tokens: int,
        *,
        removed: bool = False,
        shard: int | None = None,
    ) -> None:
        """Account one document added to (or removed from) the corpus.

        ``shard`` attributes the operation to one partition of a sharded
        service; ``None`` (e.g. in unit tests of the stats object itself)
        records no per-shard routing.
        """
        if removed:
            self._documents_removed.inc()
            self._removal_seconds.inc(float(seconds))
            if shard is not None:
                self._shard_documents_removed.labels(shard).inc()
        else:
            self._documents_added.inc()
            self._sentences_ingested.inc(sentences)
            self._tokens_ingested.inc(tokens)
            self._ingest_seconds.inc(float(seconds))
            if shard is not None:
                self._shard_documents_added.labels(shard).inc()

    def record_shard_query(self, shard: int, seconds: float) -> None:
        """Account one per-shard execution of a fanned-out (or single) query."""
        self._shard_queries.labels(shard).inc()
        self._shard_query_seconds.labels(shard).inc(float(seconds))

    def record_shard_partial(self, *, reused: bool, shard: int | None = None) -> None:
        """Account one shard partial served from (or stored into) its cache.

        With ``shard`` given, the event also lands in that shard's
        hit/miss breakdown (reused = a cache hit for the shard).
        """
        if reused:
            self._shard_partials_reused.inc()
            if shard is not None:
                self._shard_cache_hits.labels(shard).inc()
        else:
            self._shard_partials_computed.inc()
            if shard is not None:
                self._shard_cache_misses.labels(shard).inc()

    def record_shard_cache_eviction(self, shard: int, *, stale: bool) -> None:
        """Account one eviction from shard *shard*'s partial-result cache."""
        if stale:
            self._shard_cache_stale_evictions.labels(shard).inc()
        else:
            self._shard_cache_lru_evictions.labels(shard).inc()

    def record_result_cache_eviction(self, stale: bool) -> None:
        """Account one eviction from the full-result cache."""
        self._result_cache_evictions.labels("stale" if stale else "lru").inc()

    def record_result_cache_admission_skip(self) -> None:
        """Account one oversize result refused by full-result admission."""
        self._result_cache_admission_skips.inc()

    def record_shard_cache_admission_skip(self, shard: int) -> None:
        """Account one oversize partial refused by shard *shard*'s cache."""
        self._shard_cache_admission_skips.labels(shard).inc()

    def record_backpressure_wait(self) -> None:
        """Account one ingest claim that blocked on the in-flight bytes bound."""
        self._backpressure_waits.inc()

    def record_wal_append(self, frame_bytes: int) -> None:
        """Account one operation made durable in the write-ahead log."""
        self._wal_records_appended.inc()
        self._wal_bytes_appended.inc(frame_bytes)

    def record_wal_fsync(self, batch: int) -> None:
        """Account one group-commit fsync that made *batch* records durable."""
        self._wal_fsyncs.inc()
        self._wal_records_synced.inc(batch)
        self._wal_max_batch.set_max(batch)
        self._wal_batch_histogram.observe(int(batch))

    def record_checkpoint_started(self) -> None:
        """Mark one checkpoint as running (see ``checkpoint_in_progress``)."""
        self._checkpoint_in_progress.inc()

    def record_checkpoint_finished(self) -> None:
        """Mark one running checkpoint as done (success, failure or no-op)."""
        self._checkpoint_in_progress.dec()

    def record_checkpoint(self, seconds: float, checkpoint_id: int) -> None:
        """Account one completed snapshot checkpoint."""
        self._checkpoints_completed.inc()
        self._checkpoint_seconds.inc(float(seconds))
        self._last_checkpoint_id.set(checkpoint_id)
        self._last_checkpoint_unix.set(time.time())

    def record_checkpoint_failure(self, error: str) -> None:
        """Account one failed background checkpoint (WAL keeps growing)."""
        self._checkpoint_failures.inc()
        with self._lock:
            self.last_checkpoint_error = error

    def record_recovery(
        self, seconds: float, *, documents: int, replayed: int, torn_tail: bool
    ) -> None:
        """Account the warm restart that produced this service instance."""
        self._recovery_seconds.set(seconds)
        self._recovered_documents.set(documents)
        self._replayed_wal_records.set(replayed)
        self._recovered_torn_tail.set(1 if torn_tail else 0)

    # ------------------------------------------------------------------
    # attribute façade (read-only views over the registry instruments)
    # ------------------------------------------------------------------
    @property
    def queries_served(self) -> int:
        """Queries served, every kind."""
        return self._queries_served.value

    @property
    def result_cache_hits(self) -> int:
        """Full-result cache hits."""
        return self._result_cache_hits.value

    @property
    def result_cache_misses(self) -> int:
        """Full-result cache misses."""
        return self._result_cache_misses.value

    @property
    def plan_cache_hits(self) -> int:
        """Compiled-plan cache hits."""
        return self._plan_cache_hits.value

    @property
    def plan_cache_misses(self) -> int:
        """Compiled-plan cache misses."""
        return self._plan_cache_misses.value

    @property
    def documents_added(self) -> int:
        """Documents ingested."""
        return self._documents_added.value

    @property
    def documents_removed(self) -> int:
        """Documents removed."""
        return self._documents_removed.value

    @property
    def sentences_ingested(self) -> int:
        """Sentences ingested."""
        return self._sentences_ingested.value

    @property
    def tokens_ingested(self) -> int:
        """Annotated tokens ingested."""
        return self._tokens_ingested.value

    @property
    def ingest_seconds(self) -> float:
        """Wall seconds spent adding documents."""
        return float(self._ingest_seconds.value)

    @property
    def removal_seconds(self) -> float:
        """Wall seconds spent removing documents."""
        return float(self._removal_seconds.value)

    @property
    def shard_queries(self) -> dict[int, int]:
        """Per-shard query executions (one atomic cut)."""
        return self._shard_queries.values()

    @property
    def shard_query_seconds(self) -> dict[int, float]:
        """Per-shard execution seconds (one atomic cut)."""
        return self._shard_query_seconds.values()

    @property
    def shard_documents_added(self) -> dict[int, int]:
        """Per-shard documents routed in (one atomic cut)."""
        return self._shard_documents_added.values()

    @property
    def shard_documents_removed(self) -> dict[int, int]:
        """Per-shard documents removed (one atomic cut)."""
        return self._shard_documents_removed.values()

    @property
    def shard_partials_reused(self) -> int:
        """Shard partials served from the partial cache."""
        return self._shard_partials_reused.value

    @property
    def shard_partials_computed(self) -> int:
        """Shard partials computed on a partial-cache miss."""
        return self._shard_partials_computed.value

    @property
    def shard_cache_hits(self) -> dict[int, int]:
        """Per-shard partial-cache hits (one atomic cut)."""
        return self._shard_cache_hits.values()

    @property
    def shard_cache_misses(self) -> dict[int, int]:
        """Per-shard partial-cache misses (one atomic cut)."""
        return self._shard_cache_misses.values()

    @property
    def shard_cache_stale_evictions(self) -> dict[int, int]:
        """Per-shard partial-cache generation evictions (one atomic cut)."""
        return self._shard_cache_stale_evictions.values()

    @property
    def shard_cache_lru_evictions(self) -> dict[int, int]:
        """Per-shard partial-cache capacity evictions (one atomic cut)."""
        return self._shard_cache_lru_evictions.values()

    @property
    def shard_cache_admission_skips(self) -> dict[int, int]:
        """Per-shard partials refused by cost-aware admission (atomic cut)."""
        return self._shard_cache_admission_skips.values()

    @property
    def result_cache_admission_skips(self) -> int:
        """Full results refused by cost-aware cache admission."""
        return self._result_cache_admission_skips.value

    @property
    def result_cache_stale_evictions(self) -> int:
        """Full-result cache evictions from generation turnover."""
        return self._result_cache_evictions.values().get("stale", 0)

    @property
    def result_cache_lru_evictions(self) -> int:
        """Full-result cache evictions from capacity pressure."""
        return self._result_cache_evictions.values().get("lru", 0)

    @property
    def ingest_backpressure_waits(self) -> int:
        """Ingest claims that blocked on the in-flight bytes bound."""
        return self._backpressure_waits.value

    @property
    def wal_records_appended(self) -> int:
        """Records appended to the WAL."""
        return self._wal_records_appended.value

    @property
    def wal_bytes_appended(self) -> int:
        """Framed bytes appended to the WAL."""
        return self._wal_bytes_appended.value

    @property
    def wal_fsyncs(self) -> int:
        """Group-commit fsyncs performed."""
        return self._wal_fsyncs.value

    @property
    def wal_records_synced(self) -> int:
        """Records made durable by those fsyncs."""
        return self._wal_records_synced.value

    @property
    def wal_max_batch(self) -> int:
        """Largest group-commit batch observed."""
        return int(self._wal_max_batch.value)

    @property
    def wal_batch_histogram(self) -> dict[int, int]:
        """Batch-size histogram: bucket = smallest power of two >= batch."""
        return self._wal_batch_histogram.bucket_counts()

    @property
    def checkpoints_completed(self) -> int:
        """Snapshot checkpoints completed."""
        return self._checkpoints_completed.value

    @property
    def checkpoint_failures(self) -> int:
        """Background checkpoints that failed."""
        return self._checkpoint_failures.value

    @property
    def checkpoint_seconds(self) -> float:
        """Wall seconds spent checkpointing."""
        return float(self._checkpoint_seconds.value)

    @property
    def last_checkpoint_id(self) -> int:
        """Id of the newest durable checkpoint."""
        return int(self._last_checkpoint_id.value)

    @property
    def checkpoint_in_progress(self) -> bool:
        """True while a checkpoint is running (stuck checkpointer tripwire)."""
        return self._checkpoint_in_progress.value > 0

    @property
    def last_checkpoint_unix(self) -> float:
        """Unix time of the last completed checkpoint (0.0 = none yet)."""
        return float(self._last_checkpoint_unix.value)

    @property
    def recovery_seconds(self) -> float:
        """Wall seconds the warm restart took."""
        return float(self._recovery_seconds.value)

    @property
    def recovered_documents(self) -> int:
        """Documents restored by the warm restart."""
        return int(self._recovered_documents.value)

    @property
    def replayed_wal_records(self) -> int:
        """WAL records replayed on recovery."""
        return int(self._replayed_wal_records.value)

    @property
    def recovered_torn_tail(self) -> bool:
        """True when recovery truncated a torn WAL tail."""
        return bool(self._recovered_torn_tail.value)

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def result_cache_hit_rate(self) -> float:
        """Fraction of cacheable queries served from the result cache."""
        hits = self.result_cache_hits
        total = hits + self.result_cache_misses
        return hits / total if total else 0.0

    @property
    def plan_cache_hit_rate(self) -> float:
        """Fraction of string queries whose plan was already compiled."""
        hits = self.plan_cache_hits
        total = hits + self.plan_cache_misses
        return hits / total if total else 0.0

    @property
    def wal_fsyncs_saved(self) -> int:
        """Records committed minus fsyncs performed (the group-commit win)."""
        return self.wal_records_synced - self.wal_fsyncs

    @property
    def wal_mean_batch(self) -> float:
        """Mean number of records per group-commit fsync."""
        fsyncs = self.wal_fsyncs
        return self.wal_records_synced / fsyncs if fsyncs else 0.0

    @property
    def ingest_tokens_per_second(self) -> float:
        """Lifetime ingest throughput in annotated tokens per second."""
        seconds = self.ingest_seconds
        if seconds <= 0.0:
            return 0.0
        return self.tokens_ingested / seconds

    def latency_percentile(self, percentile: float) -> float:
        """Estimated percentile (e.g. 50, 95) of the lifetime latencies.

        Derived from the power-of-two ``koko_query_latency_seconds``
        buckets by
        :func:`~repro.observability.metrics.histogram_quantiles`, so no
        per-observation sample window is kept.  0.0 before the first
        query; ``ValueError`` for percentiles outside ``(0, 100]``.
        """
        return histogram_quantiles(self._query_latency, (percentile,))[percentile]

    @property
    def p50_query_seconds(self) -> float:
        """Estimated median query latency."""
        return self.latency_percentile(50.0)

    @property
    def p95_query_seconds(self) -> float:
        """Estimated 95th-percentile query latency."""
        return self.latency_percentile(95.0)

    @property
    def p99_query_seconds(self) -> float:
        """Estimated 99th-percentile query latency."""
        return self.latency_percentile(99.0)

    def shard_breakdown(self) -> dict[int, dict[str, float | int]]:
        """Per-shard queries, execution seconds and document routing.

        Each underlying metric family is read as one atomic cut; the
        four families are combined without a global lock (consistent
        per metric, not across metrics).
        """
        queries = self.shard_queries
        seconds = self.shard_query_seconds
        added = self.shard_documents_added
        removed = self.shard_documents_removed
        shards = set(queries) | set(added) | set(removed)
        return {
            shard: {
                "queries": queries.get(shard, 0),
                "query_seconds": seconds.get(shard, 0.0),
                "documents_added": added.get(shard, 0),
                "documents_removed": removed.get(shard, 0),
            }
            for shard in sorted(shards)
        }

    def shard_cache_breakdown(self) -> dict[int, dict[str, int]]:
        """Per-shard result-cache hit/miss/eviction counters.

        The raw material of the cache-sizing question: a shard with high
        misses and high lru evictions wants a bigger partial cache; high
        stale evictions mean ingest churn, which no capacity fixes.
        """
        hits = self.shard_cache_hits
        misses = self.shard_cache_misses
        stale = self.shard_cache_stale_evictions
        lru = self.shard_cache_lru_evictions
        skips = self.shard_cache_admission_skips
        shards = set(hits) | set(misses) | set(stale) | set(lru) | set(skips)
        return {
            shard: {
                "hits": hits.get(shard, 0),
                "misses": misses.get(shard, 0),
                "stale_evictions": stale.get(shard, 0),
                "lru_evictions": lru.get(shard, 0),
                "admission_skips": skips.get(shard, 0),
            }
            for shard in sorted(shards)
        }

    def snapshot(self) -> dict[str, object]:
        """A point-in-time dict of every metric (for logs / benchmarks).

        Atomic per metric: each counter, gauge, histogram and labeled
        family is read consistently; the document as a whole is not one
        global cut (no stop-the-world lock is taken).
        """
        with self._lock:
            last_checkpoint_error = self.last_checkpoint_error
        return {
            "queries_served": self.queries_served,
            "result_cache_hits": self.result_cache_hits,
            "result_cache_misses": self.result_cache_misses,
            "result_cache_hit_rate": self.result_cache_hit_rate,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "plan_cache_hit_rate": self.plan_cache_hit_rate,
            "documents_added": self.documents_added,
            "documents_removed": self.documents_removed,
            "sentences_ingested": self.sentences_ingested,
            "tokens_ingested": self.tokens_ingested,
            "ingest_seconds": self.ingest_seconds,
            "removal_seconds": self.removal_seconds,
            "ingest_tokens_per_second": self.ingest_tokens_per_second,
            "p50_query_seconds": self.p50_query_seconds,
            "p95_query_seconds": self.p95_query_seconds,
            "p99_query_seconds": self.p99_query_seconds,
            "per_shard": self.shard_breakdown(),
            "shard_partials_reused": self.shard_partials_reused,
            "shard_partials_computed": self.shard_partials_computed,
            "per_shard_result_cache": self.shard_cache_breakdown(),
            "result_cache_stale_evictions": self.result_cache_stale_evictions,
            "result_cache_lru_evictions": self.result_cache_lru_evictions,
            "result_cache_admission_skips": self.result_cache_admission_skips,
            "ingest_backpressure_waits": self.ingest_backpressure_waits,
            "durability": {
                "wal_records_appended": self.wal_records_appended,
                "wal_bytes_appended": self.wal_bytes_appended,
                "wal_fsyncs": self.wal_fsyncs,
                "wal_records_synced": self.wal_records_synced,
                "wal_fsyncs_saved": self.wal_fsyncs_saved,
                "wal_mean_batch": self.wal_mean_batch,
                "wal_max_batch": self.wal_max_batch,
                "wal_batch_histogram": self.wal_batch_histogram,
                "checkpoints_completed": self.checkpoints_completed,
                "checkpoint_failures": self.checkpoint_failures,
                "last_checkpoint_error": last_checkpoint_error,
                "checkpoint_seconds": self.checkpoint_seconds,
                "last_checkpoint_id": self.last_checkpoint_id,
                "checkpoint_in_progress": self.checkpoint_in_progress,
                "last_checkpoint_unix": self.last_checkpoint_unix,
                "recovery_seconds": self.recovery_seconds,
                "recovered_documents": self.recovered_documents,
                "replayed_wal_records": self.replayed_wal_records,
                "recovered_torn_tail": self.recovered_torn_tail,
            },
        }
