"""The query-serving layer: sharding, incremental ingestion, caching, concurrency."""

from .cache import PlanCache, ResultCache
from .locks import ReadWriteLock
from .service import KokoService, ShardedKokoService
from .stats import ServiceStats

__all__ = [
    "KokoService",
    "PlanCache",
    "ReadWriteLock",
    "ResultCache",
    "ServiceStats",
    "ShardedKokoService",
]
