"""The query-serving layer: sharding, ingestion, caching, durability."""

from ..persistence import CheckpointPolicy
from .cache import PlanCache, ResultCache
from .locks import ReadWriteLock
from .service import IngestAck, KokoService, ShardedKokoService
from .stats import ServiceStats

__all__ = [
    "CheckpointPolicy",
    "IngestAck",
    "KokoService",
    "PlanCache",
    "ReadWriteLock",
    "ResultCache",
    "ServiceStats",
    "ShardedKokoService",
]
