"""The query-serving layer: incremental ingestion, caching, concurrency."""

from .cache import PlanCache, ResultCache
from .locks import ReadWriteLock
from .service import KokoService
from .stats import ServiceStats

__all__ = [
    "KokoService",
    "PlanCache",
    "ReadWriteLock",
    "ResultCache",
    "ServiceStats",
]
