"""The query-serving layer: sharding, ingestion, caching, durability."""

from ..persistence import CheckpointPolicy
from .cache import PlanCache, ResultCache
from .locks import ReadWriteLock
from .service import KokoService, ShardedKokoService
from .stats import ServiceStats

__all__ = [
    "CheckpointPolicy",
    "KokoService",
    "PlanCache",
    "ReadWriteLock",
    "ResultCache",
    "ServiceStats",
    "ShardedKokoService",
]
