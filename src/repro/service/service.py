"""KokoService — a concurrent query-serving layer over the KOKO engine.

The batch pipeline of the paper builds the multi-index once over a frozen
corpus and evaluates one query at a time.  ``KokoService`` turns that into
a long-lived server:

* **Incremental ingestion** — :meth:`add_document` annotates raw text with
  the NLP pipeline and folds it into the live word, entity, PL and POS
  indexes (no rebuild); :meth:`remove_document` un-indexes a document.
* **Plan caching** — each distinct query string is parsed and normalised
  once (:class:`~repro.service.cache.PlanCache`).
* **Result caching** — full query results are kept in a generation-stamped
  LRU (:class:`~repro.service.cache.ResultCache`); every ingest bumps the
  corpus generation, which invalidates all cached results at once.
* **Concurrency** — any number of queries evaluate in parallel under a
  readers-writer lock (:class:`~repro.service.locks.ReadWriteLock`);
  ingestion takes the write side.  :meth:`query_batch` fans a batch out
  over a thread pool, preserving per-query
  :class:`~repro.koko.results.StageTimings`.
* **Observability** — :class:`~repro.service.stats.ServiceStats` tracks
  cache hit rates, ingest throughput and p50/p95 query latency.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
import time

from ..embeddings.expansion import DescriptorExpander
from ..embeddings.vectors import VectorStore
from ..errors import ServiceError
from ..indexing.koko_index import IndexStatistics, KokoIndexSet
from ..koko.ast import KokoQuery
from ..koko.engine import CompiledQuery, KokoEngine
from ..koko.results import KokoResult
from ..nlp.pipeline import Pipeline
from ..nlp.types import Corpus, Document
from .cache import PlanCache, ResultCache
from .locks import ReadWriteLock
from .stats import ServiceStats


class KokoService:
    """A mutable-corpus, multi-query KOKO server.

    Results returned by :meth:`query` may be shared cache entries — treat
    them as read-only.

    Parameters
    ----------
    pipeline:
        NLP pipeline used to annotate ingested text (default rule-based).
    name:
        Name of the service's corpus.
    plan_cache_size, result_cache_size:
        LRU capacities of the two read-side caches.
    max_workers:
        Thread-pool width used by :meth:`query_batch`.
    expander, vectors, dictionaries, use_gsp, use_default_vectors:
        Forwarded to :class:`~repro.koko.engine.KokoEngine`.
    """

    def __init__(
        self,
        pipeline: Pipeline | None = None,
        name: str = "service",
        plan_cache_size: int = 256,
        result_cache_size: int = 256,
        max_workers: int = 4,
        expander: DescriptorExpander | None = None,
        vectors: VectorStore | None = None,
        dictionaries: dict[str, set[str]] | None = None,
        use_gsp: bool = True,
        use_default_vectors: bool = True,
    ) -> None:
        self.pipeline = pipeline or Pipeline()
        self.corpus = Corpus(name=name)
        self.indexes = KokoIndexSet()
        self.engine = KokoEngine(
            self.corpus,
            expander=expander,
            vectors=vectors,
            dictionaries=dictionaries,
            use_gsp=use_gsp,
            indexes=self.indexes,
            use_default_vectors=use_default_vectors,
        )
        self.max_workers = max_workers
        self.stats = ServiceStats()
        self._plan_cache = PlanCache(plan_cache_size)
        self._result_cache: ResultCache[KokoResult] = ResultCache(result_cache_size)
        self._lock = ReadWriteLock()
        self._documents: dict[str, Document] = {}
        self._next_sid = 0
        self._generation = 0

    # ------------------------------------------------------------------
    # ingestion (write side)
    # ------------------------------------------------------------------
    def add_document(self, text: str, doc_id: str | None = None) -> Document:
        """Annotate *text* and fold it into the live corpus and indexes."""
        started = time.perf_counter()
        with self._lock.write_locked():
            resolved_id = doc_id if doc_id is not None else self._fresh_doc_id()
            if resolved_id in self._documents:
                raise ServiceError(f"document id {resolved_id!r} already ingested")
            document = self.pipeline.annotate(
                text, doc_id=resolved_id, first_sid=self._next_sid
            )
            self._ingest_locked(document)
        self.stats.record_ingest(
            time.perf_counter() - started, len(document), document.num_tokens
        )
        return document

    def add_annotated_document(self, document: Document) -> Document:
        """Ingest an already-annotated document.

        The document's sentence ids must be fresh; documents annotated with
        ``first_sid=service.next_sid()`` (or produced by this service's own
        pipeline flow) satisfy that.
        """
        started = time.perf_counter()
        with self._lock.write_locked():
            if document.doc_id in self._documents:
                raise ServiceError(f"document id {document.doc_id!r} already ingested")
            for sentence in document:
                if sentence.sid < self._next_sid:
                    raise ServiceError(
                        f"sentence id {sentence.sid} of document "
                        f"{document.doc_id!r} is not fresh (next sid is "
                        f"{self._next_sid})"
                    )
            self._ingest_locked(document)
        self.stats.record_ingest(
            time.perf_counter() - started, len(document), document.num_tokens
        )
        return document

    def remove_document(self, doc_id: str) -> Document:
        """Un-index and drop one document; returns it."""
        started = time.perf_counter()
        with self._lock.write_locked():
            document = self._documents.pop(doc_id, None)
            if document is None:
                raise ServiceError(f"unknown document id {doc_id!r}")
            self.corpus.documents.remove(document)
            self.indexes.remove_document(document)
            self.engine.unregister_document(document)
            self._generation += 1
        self.stats.record_ingest(
            time.perf_counter() - started,
            len(document),
            document.num_tokens,
            removed=True,
        )
        return document

    def _ingest_locked(self, document: Document) -> None:
        """Wire one annotated document into corpus, indexes and engine."""
        self._next_sid = max(
            self._next_sid, max((s.sid for s in document), default=self._next_sid - 1) + 1
        )
        self.corpus.documents.append(document)
        self._documents[document.doc_id] = document
        self.indexes.add_document(document)
        self.engine.register_document(document)
        self._generation += 1

    def _fresh_doc_id(self) -> str:
        candidate = f"doc{len(self._documents)}"
        while candidate in self._documents:
            candidate = candidate + "_"
        return candidate

    # ------------------------------------------------------------------
    # querying (read side)
    # ------------------------------------------------------------------
    def query(
        self,
        query: str | KokoQuery | CompiledQuery,
        threshold_override: float | None = None,
        keep_all_scores: bool = False,
    ) -> KokoResult:
        """Evaluate one query against the current corpus snapshot.

        String queries go through the plan cache and the generation-stamped
        result cache; pre-parsed queries bypass both.
        """
        started = time.perf_counter()
        result_hit: bool | None = None
        plan_hit: bool | None = None
        with self._lock.read_locked():
            if isinstance(query, str):
                key = (query, threshold_override, keep_all_scores)
                generation = self._generation
                result = self._result_cache.get(key, generation)
                if result is not None:
                    result_hit = True
                else:
                    result_hit = False
                    plan, plan_hit = self._plan_cache.get_or_compile(query)
                    result = self.engine.execute(
                        plan,
                        threshold_override=threshold_override,
                        keep_all_scores=keep_all_scores,
                    )
                    self._result_cache.put(key, generation, result)
            else:
                result = self.engine.execute(
                    query,
                    threshold_override=threshold_override,
                    keep_all_scores=keep_all_scores,
                )
        self.stats.record_query(
            time.perf_counter() - started,
            result_cache_hit=result_hit,
            plan_cache_hit=plan_hit,
        )
        return result

    def query_batch(
        self,
        queries: list[str | KokoQuery | CompiledQuery],
        threshold_override: float | None = None,
        keep_all_scores: bool = False,
        max_workers: int | None = None,
    ) -> list[KokoResult]:
        """Evaluate a batch of queries concurrently, preserving order.

        Each result carries its own :class:`~repro.koko.results.StageTimings`
        exactly as single-query execution would.
        """
        if not queries:
            return []
        workers = max(1, min(max_workers or self.max_workers, len(queries)))
        with ThreadPoolExecutor(max_workers=workers) as executor:
            return list(
                executor.map(
                    lambda q: self.query(
                        q,
                        threshold_override=threshold_override,
                        keep_all_scores=keep_all_scores,
                    ),
                    queries,
                )
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Corpus generation; bumped by every ingest (cache invalidation)."""
        return self._generation

    def next_sid(self) -> int:
        """The first sentence id a newly annotated document should use."""
        return self._next_sid

    def document_ids(self) -> list[str]:
        with self._lock.read_locked():
            return list(self._documents)

    def statistics(self) -> IndexStatistics:
        """Current :class:`IndexStatistics` of the live index set."""
        with self._lock.read_locked():
            return self.indexes.statistics()

    def __len__(self) -> int:
        return len(self._documents)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"KokoService(documents={len(self._documents)}, "
            f"generation={self._generation})"
        )
