"""KokoService — a concurrent, shardable query-serving layer over KOKO.

The batch pipeline of the paper builds the multi-index once over a frozen
corpus and evaluates one query at a time.  ``KokoService`` turns that into
a long-lived server:

* **Incremental ingestion** — :meth:`add_document` annotates raw text with
  the NLP pipeline and folds it into the live word, entity, PL and POS
  indexes (no rebuild); :meth:`remove_document` un-indexes a document.
* **Hash-partitioned shards** — with ``shards=N`` the corpus is split
  across N :class:`~repro.indexing.koko_index.KokoIndexSet` partitions
  (stable hash of ``doc_id``, see
  :class:`~repro.indexing.sharding.ShardedIndexSet`).  Every shard has its
  own corpus slice, engine and readers-writer lock, so ingesting a
  document write-locks **one** shard — queries keep reading the other
  N−1 concurrently.
* **Parallel fan-out** — a query executes the stage pipeline per shard on
  a thread pool and the per-shard results are merged deterministically
  (:func:`~repro.koko.results.merge_results`): stable tuple order,
  summed :class:`~repro.koko.results.StageTimings`.
* **Plan caching** — each distinct query string is parsed and normalised
  once (:class:`~repro.service.cache.PlanCache`).
* **Result caching** — full query results are kept in a generation-stamped
  LRU (:class:`~repro.service.cache.ResultCache`); every ingest bumps the
  corpus generation, which invalidates all cached results at once.
* **Concurrency** — any number of queries evaluate in parallel under the
  per-shard read locks; :meth:`query_batch` fans a batch out over a thread
  pool, preserving per-query timings.
* **Observability** — :class:`~repro.service.stats.ServiceStats` tracks
  cache hit rates, ingest throughput, p50/p95 query latency and a
  per-shard breakdown (queries, seconds, documents routed).

Consistency note: a result served from the cache always corresponds to one
corpus generation.  An uncached query that overlaps an in-flight ingest
may observe the new document on its shard while other shards are read
earlier — the usual read-committed view of a partitioned store.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from ..embeddings.expansion import DescriptorExpander
from ..embeddings.vectors import VectorStore
from ..errors import ServiceError
from ..indexing.koko_index import IndexStatistics, KokoIndexSet
from ..indexing.sharding import ShardedIndexSet
from ..koko.ast import KokoQuery
from ..koko.engine import CompiledQuery, KokoEngine, compile_query
from ..koko.results import KokoResult, merge_results
from ..nlp.pipeline import Pipeline
from ..nlp.types import Corpus, Document
from .cache import PlanCache, ResultCache
from .locks import ReadWriteLock
from .stats import ServiceStats


class _Shard:
    """One partition: its own corpus slice, index set, engine and RW lock."""

    def __init__(
        self, shard_id: int, name: str, indexes: KokoIndexSet, engine_kwargs: dict
    ) -> None:
        self.shard_id = shard_id
        self.corpus = Corpus(name=name)
        self.indexes = indexes
        self.engine = KokoEngine(self.corpus, indexes=indexes, **engine_kwargs)
        self.lock = ReadWriteLock()
        self.documents: dict[str, Document] = {}

    def splice(self, document: Document) -> None:
        """Wire one annotated document into this shard (write lock held)."""
        self.corpus.documents.append(document)
        self.documents[document.doc_id] = document
        self.indexes.add_document(document)
        self.engine.register_document(document)

    def unsplice(self, document: Document) -> None:
        """Un-wire one document from this shard (write lock held)."""
        self.corpus.documents.remove(document)
        del self.documents[document.doc_id]
        self.indexes.remove_document(document)
        self.engine.unregister_document(document)


class KokoService:
    """A mutable-corpus, multi-query, optionally sharded KOKO server.

    Results returned by :meth:`query` may be shared cache entries — treat
    them as read-only.

    Parameters
    ----------
    pipeline:
        NLP pipeline used to annotate ingested text (default rule-based).
    name:
        Name of the service's corpus.
    shards:
        Number of hash partitions.  ``1`` (the default) behaves exactly
        like the unsharded service; ``N > 1`` fans queries out per shard
        and gives every shard its own write lock.
    plan_cache_size, result_cache_size:
        LRU capacities of the two read-side caches.
    max_workers:
        Thread-pool width used by :meth:`query_batch`.
    expander, vectors, dictionaries, use_gsp, use_default_vectors:
        Forwarded to every shard's :class:`~repro.koko.engine.KokoEngine`.
    """

    def __init__(
        self,
        pipeline: Pipeline | None = None,
        name: str = "service",
        shards: int = 1,
        plan_cache_size: int = 256,
        result_cache_size: int = 256,
        max_workers: int = 4,
        expander: DescriptorExpander | None = None,
        vectors: VectorStore | None = None,
        dictionaries: dict[str, set[str]] | None = None,
        use_gsp: bool = True,
        use_default_vectors: bool = True,
    ) -> None:
        if shards <= 0:
            raise ServiceError(f"shards must be positive, got {shards}")
        self.pipeline = pipeline or Pipeline()
        self.name = name
        if vectors is None and use_default_vectors:
            from ..embeddings.pretrained import build_default_vectors

            vectors = build_default_vectors()  # memoized; shared by all shards
        engine_kwargs = dict(
            expander=expander,
            vectors=vectors,
            dictionaries=dictionaries,
            use_gsp=use_gsp,
            use_default_vectors=use_default_vectors,
        )
        self._index_set = ShardedIndexSet(shards)
        self._shards = [
            _Shard(i, f"{name}/shard{i}", self._index_set.shards[i], engine_kwargs)
            for i in range(shards)
        ]
        self.max_workers = max_workers
        self.stats = ServiceStats()
        self._plan_cache = PlanCache(plan_cache_size)
        self._result_cache: ResultCache[KokoResult] = ResultCache(result_cache_size)
        # Serialises corpus mutation (sid allocation, doc routing, generation)
        # without ever blocking the per-shard read side.
        self._meta_lock = threading.Lock()
        self._doc_shard: dict[str, int] = {}
        self._next_sid = 0
        self._generation = 0
        self._shard_pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(max_workers=shards, thread_name_prefix="koko-shard")
            if shards > 1
            else None
        )

    # ------------------------------------------------------------------
    # ingestion (write side)
    # ------------------------------------------------------------------
    def add_document(self, text: str, doc_id: str | None = None) -> Document:
        """Annotate *text* and fold it into its shard's corpus and indexes."""
        started = time.perf_counter()
        with self._meta_lock:
            resolved_id = doc_id if doc_id is not None else self._fresh_doc_id()
            if resolved_id in self._doc_shard:
                raise ServiceError(f"document id {resolved_id!r} already ingested")
            document = self.pipeline.annotate(
                text, doc_id=resolved_id, first_sid=self._next_sid
            )
            shard = self._ingest_meta_locked(document)
        self.stats.record_ingest(
            time.perf_counter() - started,
            len(document),
            document.num_tokens,
            shard=shard.shard_id,
        )
        return document

    def add_annotated_document(self, document: Document) -> Document:
        """Ingest an already-annotated document.

        The document's sentence ids must be fresh; documents annotated with
        ``first_sid=service.next_sid()`` (or produced by this service's own
        pipeline flow) satisfy that.
        """
        started = time.perf_counter()
        with self._meta_lock:
            if document.doc_id in self._doc_shard:
                raise ServiceError(f"document id {document.doc_id!r} already ingested")
            for sentence in document:
                if sentence.sid < self._next_sid:
                    raise ServiceError(
                        f"sentence id {sentence.sid} of document "
                        f"{document.doc_id!r} is not fresh (next sid is "
                        f"{self._next_sid})"
                    )
            shard = self._ingest_meta_locked(document)
        self.stats.record_ingest(
            time.perf_counter() - started,
            len(document),
            document.num_tokens,
            shard=shard.shard_id,
        )
        return document

    def remove_document(self, doc_id: str) -> Document:
        """Un-index and drop one document; returns it."""
        started = time.perf_counter()
        with self._meta_lock:
            shard_id = self._doc_shard.pop(doc_id, None)
            if shard_id is None:
                raise ServiceError(f"unknown document id {doc_id!r}")
            shard = self._shards[shard_id]
            with shard.lock.write_locked():
                document = shard.documents[doc_id]
                shard.unsplice(document)
                self._generation += 1
        self.stats.record_ingest(
            time.perf_counter() - started,
            len(document),
            document.num_tokens,
            removed=True,
            shard=shard_id,
        )
        return document

    def _ingest_meta_locked(self, document: Document) -> _Shard:
        """Route one annotated document to its shard (meta lock held)."""
        self._next_sid = max(
            self._next_sid, max((s.sid for s in document), default=self._next_sid - 1) + 1
        )
        shard = self._shards[self._index_set.shard_id(document.doc_id)]
        self._doc_shard[document.doc_id] = shard.shard_id
        with shard.lock.write_locked():
            shard.splice(document)
            self._generation += 1
        return shard

    def _fresh_doc_id(self) -> str:
        candidate = f"doc{len(self._doc_shard)}"
        while candidate in self._doc_shard:
            candidate = candidate + "_"
        return candidate

    # ------------------------------------------------------------------
    # querying (read side)
    # ------------------------------------------------------------------
    def query(
        self,
        query: str | KokoQuery | CompiledQuery,
        threshold_override: float | None = None,
        keep_all_scores: bool = False,
    ) -> KokoResult:
        """Evaluate one query against the current corpus.

        String queries go through the plan cache and the generation-stamped
        result cache; pre-parsed queries bypass both.
        """
        started = time.perf_counter()
        result_hit: bool | None = None
        plan_hit: bool | None = None
        if isinstance(query, str):
            key = (query, threshold_override, keep_all_scores)
            generation = self._generation
            result = self._result_cache.get(key, generation)
            if result is not None:
                result_hit = True
            else:
                result_hit = False
                plan, plan_hit = self._plan_cache.get_or_compile(query)
                result = self._execute(plan, threshold_override, keep_all_scores)
                self._result_cache.put(key, generation, result)
        else:
            result = self._execute(query, threshold_override, keep_all_scores)
        self.stats.record_query(
            time.perf_counter() - started,
            result_cache_hit=result_hit,
            plan_cache_hit=plan_hit,
        )
        return result

    def _execute(
        self,
        query: str | KokoQuery | CompiledQuery,
        threshold_override: float | None,
        keep_all_scores: bool,
    ) -> KokoResult:
        """Run the stage pipeline on every shard and merge the results."""
        if len(self._shards) == 1:
            return self._execute_shard(
                self._shards[0], query, threshold_override, keep_all_scores
            )
        pool = self._shard_pool
        if pool is None:
            raise ServiceError("service is closed")
        # Normalise once so the fan-out doesn't repeat parse + normalise
        # per shard (the plan cache already hands us a CompiledQuery).
        if not isinstance(query, CompiledQuery):
            query = compile_query(query)
        futures = [
            pool.submit(
                self._execute_shard, shard, query, threshold_override, keep_all_scores
            )
            for shard in self._shards
        ]
        return merge_results([future.result() for future in futures])

    def _execute_shard(
        self,
        shard: _Shard,
        query: str | KokoQuery | CompiledQuery,
        threshold_override: float | None,
        keep_all_scores: bool,
    ) -> KokoResult:
        started = time.perf_counter()
        with shard.lock.read_locked():
            result = shard.engine.execute(
                query,
                threshold_override=threshold_override,
                keep_all_scores=keep_all_scores,
            )
        self.stats.record_shard_query(shard.shard_id, time.perf_counter() - started)
        return result

    def query_batch(
        self,
        queries: list[str | KokoQuery | CompiledQuery],
        threshold_override: float | None = None,
        keep_all_scores: bool = False,
        max_workers: int | None = None,
    ) -> list[KokoResult]:
        """Evaluate a batch of queries concurrently, preserving order.

        Each result carries its own :class:`~repro.koko.results.StageTimings`
        exactly as single-query execution would.  The batch pool is separate
        from the per-shard fan-out pool, so batched queries on a sharded
        service still parallelise across shards.
        """
        if not queries:
            return []
        workers = max(1, min(max_workers or self.max_workers, len(queries)))
        with ThreadPoolExecutor(max_workers=workers) as executor:
            return list(
                executor.map(
                    lambda q: self.query(
                        q,
                        threshold_override=threshold_override,
                        keep_all_scores=keep_all_scores,
                    ),
                    queries,
                )
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the fan-out pool down (idempotent; no-op when unsharded)."""
        if self._shard_pool is not None:
            self._shard_pool.shutdown(wait=True)
            self._shard_pool = None

    def __enter__(self) -> "KokoService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def generation(self) -> int:
        """Corpus generation; bumped by every ingest (cache invalidation)."""
        return self._generation

    @property
    def indexes(self) -> KokoIndexSet | ShardedIndexSet:
        """The live index set: a plain :class:`KokoIndexSet` when unsharded,
        the :class:`ShardedIndexSet` otherwise."""
        if len(self._shards) == 1:
            return self._shards[0].indexes
        return self._index_set

    @property
    def engine(self) -> KokoEngine:
        """The single shard's engine (unsharded services only)."""
        if len(self._shards) != 1:
            raise ServiceError(
                "a sharded service has no single engine; use .engines"
            )
        return self._shards[0].engine

    @property
    def engines(self) -> list[KokoEngine]:
        """Every shard's engine, in shard order."""
        return [shard.engine for shard in self._shards]

    @property
    def corpus(self) -> Corpus:
        """The single shard's corpus (unsharded services only)."""
        if len(self._shards) != 1:
            raise ServiceError(
                "a sharded service has no single corpus; use .corpora"
            )
        return self._shards[0].corpus

    @property
    def corpora(self) -> list[Corpus]:
        """Every shard's corpus slice, in shard order."""
        return [shard.corpus for shard in self._shards]

    def next_sid(self) -> int:
        """The first sentence id a newly annotated document should use."""
        return self._next_sid

    def document_ids(self) -> list[str]:
        with self._meta_lock:
            return list(self._doc_shard)

    def shard_of(self, doc_id: str) -> int:
        """The shard index *doc_id* is (or would be) routed to."""
        return self._index_set.shard_id(doc_id)

    def statistics(self) -> IndexStatistics:
        """Current :class:`IndexStatistics` merged across every shard."""
        return IndexStatistics.merged(self.statistics_by_shard())

    def statistics_by_shard(self) -> list[IndexStatistics]:
        """Per-shard :class:`IndexStatistics` (the balance/skew view)."""
        stats = []
        for shard in self._shards:
            with shard.lock.read_locked():
                stats.append(shard.indexes.statistics())
        return stats

    def __len__(self) -> int:
        return len(self._doc_shard)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"KokoService(documents={len(self._doc_shard)}, "
            f"shards={len(self._shards)}, generation={self._generation})"
        )


class ShardedKokoService(KokoService):
    """A :class:`KokoService` that defaults to four hash partitions."""

    def __init__(self, shards: int = 4, **kwargs) -> None:
        super().__init__(shards=shards, **kwargs)
