"""KokoService — a concurrent, shardable, durable query-serving layer over KOKO.

The batch pipeline of the paper builds the multi-index once over a frozen
corpus and evaluates one query at a time.  ``KokoService`` turns that into
a long-lived server:

* **Incremental ingestion** — :meth:`add_document` annotates raw text with
  the NLP pipeline and folds it into the live word, entity, PL and POS
  indexes (no rebuild); :meth:`remove_document` un-indexes a document.
* **Staged concurrent ingest** — the write path is a pipeline: reserve a
  sentence-id range under the meta lock (microseconds), run NLP annotation
  *outside every lock* (optionally on a thread or process annotation
  pool), append to the write-ahead log under its own group-commit
  machinery, and splice postings under only the target shard's write lock.
  Writers on different shards therefore ingest in parallel, and readers
  are never blocked by annotation or fsync.
* **Hash-partitioned shards** — with ``shards=N`` the corpus is split
  across N :class:`~repro.indexing.koko_index.KokoIndexSet` partitions
  (stable hash of ``doc_id``, see
  :class:`~repro.indexing.sharding.ShardedIndexSet`).  Every shard has its
  own corpus slice, engine and readers-writer lock, so ingesting a
  document write-locks **one** shard — queries keep reading the other
  N−1 concurrently.
* **Parallel fan-out** — a query executes the stage pipeline per shard on
  a thread pool and the per-shard results are merged deterministically
  (:func:`~repro.koko.results.merge_results`): stable tuple order,
  summed :class:`~repro.koko.results.StageTimings`.
* **Plan caching** — each distinct query string is parsed and normalised
  once (:class:`~repro.service.cache.PlanCache`).
* **Result caching with per-shard generation stamps** — full query results
  are kept in an LRU stamped with the vector of per-shard generations; in
  addition each shard's partial result is cached under that shard's own
  generation, so ingesting into shard *k* invalidates only shard *k*'s
  work — a repeat query re-executes one shard and reuses the other N−1
  cached partials.
* **Durability with group commit** — constructed with ``storage_dir`` (or
  via :meth:`KokoService.open`), every ``add``/``remove`` is appended to a
  CRC-framed write-ahead log *before* it is applied; concurrent appends
  coalesce into shared fsyncs (one disk flush commits a whole batch — see
  :mod:`repro.persistence.wal`), tunable with ``sync_interval``.  A
  background checkpoint thread folds the log into versioned snapshots.
  Reopening the directory restores the latest valid snapshot and replays
  the WAL tail — tolerating a torn final record — so the service restarts
  warm with identical query results and zero re-annotation.
* **Async front end** — :meth:`aquery`, :meth:`aadd_document`,
  :meth:`aremove_document` and :meth:`aquery_batch` wrap the blocking
  calls in ``asyncio`` futures driven by a dedicated thread pool, so an
  event-loop application can serve heavy mixed read/write traffic without
  blocking its loop.
* **Concurrency** — any number of queries evaluate in parallel under the
  per-shard read locks; :meth:`query_batch` fans a batch out over a thread
  pool, preserving per-query timings.  Checkpoints hold per-shard *read*
  locks only, so snapshotting never stalls readers.
* **Observability** — :class:`~repro.service.stats.ServiceStats` tracks
  cache hit rates, ingest throughput, p50/p95 query latency, a per-shard
  breakdown, and durability counters (WAL appends, group-commit batch
  sizes and fsyncs saved, checkpoints, recovery) — all backed by one
  :class:`~repro.observability.metrics.MetricsRegistry` (``service.metrics``)
  with Prometheus text / JSON exposition.  Query and ingest executions are
  traced into :class:`~repro.observability.tracing.Span` trees —
  deterministically sampled at ``trace_sample_rate``, or on demand via
  ``query(..., explain=True)`` which returns an EXPLAIN ANALYZE-style
  report.  Operations slower than ``slow_query_ms`` / ``slow_ingest_ms``
  land as structured entries in a slow-op ring buffer
  (:meth:`~KokoService.recent_slow_ops`, optional JSON-lines file sink).

Lock hierarchy (see ``docs/ARCHITECTURE.md`` for the full map)::

    meta lock (+ condition)   — sid reservation, doc-id claims, routing,
      │                         checkpoint drain barrier
      ├─ per-shard RW locks   — readers share, the splice of one ingest
      │                         write-locks exactly one shard
      └─ WAL internal locks   — frame append mutex + group-commit condvar

    The meta lock is never held while annotating, fsyncing or executing
    queries: adds *and* removes follow the claim → log-off-lock → apply
    shape, so no group commit (including any ``sync_interval`` linger)
    ever happens under the meta lock.  Only ``add_annotated_document``
    still appends under it (it has no off-lock work to pipeline), which is
    safe because the WAL's own locks are leaves of the hierarchy.

Consistency note: a result served from the cache always corresponds to one
vector of shard generations.  An uncached query that overlaps an in-flight
ingest may observe the new document on its shard while other shards are
read earlier — the usual read-committed view of a partitioned store.
"""

from __future__ import annotations

import asyncio
import hashlib
import threading
import time
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from pathlib import Path

from ..embeddings.expansion import DescriptorExpander
from ..embeddings.vectors import VectorStore
from ..errors import DeadlineExceeded, PersistenceError, ServiceError
from ..indexing.koko_index import IndexStatistics, KokoIndexSet
from ..indexing.sharding import ShardedIndexSet
from ..koko.ast import KokoQuery
from ..koko.engine import CompiledQuery, KokoEngine, compile_query
from ..koko.results import KokoResult, merge_results
from ..nlp.pipeline import Pipeline
from ..nlp.types import Corpus, Document
from ..observability.heat import ShardHeatAccumulator, ShardHeatReport
from ..observability.metrics import MetricsRegistry
from ..observability.slowlog import SlowOpLog
from ..observability.tracestore import TraceStore
from ..observability.tracing import ExplainedResult, Span, TraceContext, Tracer
from ..persistence import (
    OP_ADD,
    OP_REMOVE,
    CheckpointPolicy,
    CheckpointScheduler,
    CommitTicket,
    RecoveryManager,
    SnapshotState,
    StorageLayout,
    WalPosition,
    WalRecord,
    WriteAheadLog,
    write_snapshot,
)
from ..storage.database import Database
from .cache import PlanCache, ResultCache
from .locks import ReadWriteLock
from .stats import ServiceStats

__all__ = ["IngestAck", "KokoService", "ShardedKokoService"]


@dataclass
class IngestAck:
    """The pipelined-ack return of ``add_document(wait_durable=False)``.

    The document is already spliced and visible to queries; the *commit
    future* — durability — is the attached :class:`CommitTicket`.  A crash
    before :meth:`wait_durable` returns may lose the operation (it is in
    WAL order but possibly not yet fsynced); everything the default
    ``wait_durable=True`` path promises is restored by waiting.
    """

    document: Document
    ticket: CommitTicket | None  # None on a memory-only service

    @property
    def durable(self) -> bool:
        """True once the logged record is covered by an fsync (no blocking)."""
        return self.ticket is None or self.ticket.durable

    def wait_durable(self) -> Document:
        """Block until the ingest is durable; returns the document."""
        if self.ticket is not None:
            self.ticket.wait()
        return self.document


# ----------------------------------------------------------------------
# process-pool annotation workers (module level so they pickle)
# ----------------------------------------------------------------------
_WORKER_PIPELINE: Pipeline | None = None


def _init_annotation_worker(pipeline: Pipeline) -> None:
    """Install the service's pipeline in a freshly forked/spawned worker."""
    global _WORKER_PIPELINE
    _WORKER_PIPELINE = pipeline


def _annotate_in_worker(text: str, doc_id: str, first_sid: int) -> Document:
    """Annotate one document inside an annotation-pool worker process."""
    assert _WORKER_PIPELINE is not None, "annotation worker not initialised"
    return _WORKER_PIPELINE.annotate(text, doc_id=doc_id, first_sid=first_sid)


def _warm_annotation_worker() -> None:
    """No-op task submitted at startup to force worker spawning."""
    return None


def _estimate_document_bytes(document: Document) -> int:
    """Approximate payload bytes a document splices into its shard.

    The raw text's UTF-8 length when the document carries its text
    (heat accounting wants payload scale, not exact frame size); a
    token-count estimate otherwise.
    """
    text = getattr(document, "text", "")
    if text:
        return len(text.encode("utf-8"))
    return document.num_tokens * 8


class _Shard:
    """One partition: its own corpus slice, index set, engine and RW lock."""

    def __init__(
        self, shard_id: int, name: str, indexes: KokoIndexSet, engine_kwargs: dict
    ) -> None:
        self.shard_id = shard_id
        self.corpus = Corpus(name=name)
        self.indexes = indexes
        self.engine = KokoEngine(self.corpus, indexes=indexes, **engine_kwargs)
        self.lock = ReadWriteLock()
        self.documents: dict[str, Document] = {}

    def splice(self, document: Document) -> None:
        """Wire one annotated document into this shard (write lock held)."""
        self.corpus.documents.append(document)
        self.documents[document.doc_id] = document
        self.indexes.add_document(document)
        self.engine.register_document(document)

    def unsplice(self, document: Document) -> None:
        """Un-wire one document from this shard (write lock held)."""
        self.corpus.documents.remove(document)
        del self.documents[document.doc_id]
        self.indexes.remove_document(document)
        self.engine.unregister_document(document)

    def adopt(self, documents: list[Document]) -> None:
        """Attach already-indexed documents (snapshot restore; no index add)."""
        for document in documents:
            self.corpus.documents.append(document)
            self.documents[document.doc_id] = document
            self.engine.register_document(document)


class KokoService:
    """A mutable-corpus, multi-query, optionally sharded and durable server.

    Results returned by :meth:`query` may be shared cache entries — treat
    them as read-only.

    Parameters
    ----------
    pipeline:
        NLP pipeline used to annotate ingested text (default rule-based).
        A custom pipeline must provide ``annotate(text, doc_id,
        first_sid)`` **and** a ``tokenizer.split_sentences(text)`` whose
        count bounds the sentences ``annotate`` will produce — the staged
        ingest sizes its sid reservation with it (subclassing
        :class:`~repro.nlp.pipeline.Pipeline` satisfies both).  With
        ``annotation_processes=True`` the pipeline must also be picklable
        (the default rule-based one is).
    name:
        Name of the service's corpus (when reopening a durable directory,
        the persisted name wins).
    shards:
        Number of hash partitions.  ``None`` (the default) means one shard,
        or — when ``storage_dir`` holds an existing service — whatever
        shard count was persisted.  An explicit value that contradicts a
        recovered snapshot raises :class:`ServiceError`.
    columnar:
        Store each shard's postings in flat numpy column arrays and run
        the posting-list algebra vectorized (default True).  Snapshots,
        WAL records and replication payloads are format-identical either
        way — restored shards are converted in memory — and query results
        are tuple-for-tuple the same; ``False`` falls back to the
        object-backed posting lists.
    plan_cache_size, result_cache_size:
        LRU capacities of the two read-side caches.
    result_cache_max_entry_bytes:
        Cost-aware result-cache admission: results whose estimated size
        (:meth:`~repro.koko.results.KokoResult.approximate_bytes`)
        exceeds this bound are never cached — one giant result would
        evict many small reusable entries.  Applies to the full-result
        cache and every per-shard partial cache; refusals are counted in
        ``stats.result_cache_admission_skips`` and the per-shard
        ``admission_skips`` breakdown.  ``None`` (default) admits any
        size.
    max_workers:
        Thread-pool width used by :meth:`query_batch` and by the async
        front end (:meth:`aquery` et al.).
    annotation_workers:
        Size of the annotation pool the staged ingest path uses to run NLP
        annotation off-lock.  ``None`` (default) annotates inline in the
        calling thread — writers still annotate outside every lock, so
        multi-threaded callers already overlap annotation with WAL fsyncs
        and other shards' splices.
    annotation_processes:
        With ``annotation_workers`` set, use a **process** pool instead of
        a thread pool — genuine multi-core annotation (the pure-Python
        pipeline is GIL-bound in threads).  Documents travel back pickled,
        exactly like WAL records.  Workers start via forkserver/spawn
        (never fork — the service runs threads), so the usual
        :mod:`multiprocessing` rule applies: the program's ``__main__``
        module must be importable (scripts and pytest are; a bare
        REPL/stdin program is not).
    storage_dir:
        Directory for the durability subsystem (snapshots + write-ahead
        log).  ``None`` (the default) keeps the service memory-only.  An
        existing directory is recovered: latest valid snapshot, then WAL
        tail replay — see :mod:`repro.persistence`.
    checkpoint_policy:
        When the background thread folds the WAL into a fresh snapshot
        (default: 256 ops / 8 MiB / 300 s, whichever first).  Use
        ``CheckpointPolicy.disabled()`` for explicit :meth:`checkpoint`
        calls only.
    max_inflight_ingest_bytes:
        Admission bound on the staged write path: the total text bytes of
        documents that have claimed an ingest slot but not yet committed
        (i.e. are annotating, logging or splicing).  A claim that would
        exceed the bound **blocks** until in-flight ingests drain — a
        runaway producer back-pressures instead of exhausting memory.  A
        single document larger than the bound is still admitted (alone),
        so no input can deadlock the pipeline.  ``None`` (default) admits
        unconditionally.  Waits are counted in
        ``stats.ingest_backpressure_waits``.
    wal_sync:
        fsync the WAL on every logged operation (default True).  Appends
        from concurrent writers share fsyncs via group commit.
    sync_interval:
        Group-commit linger, in seconds: how long the WAL's sync leader
        waits before flushing so more concurrent appends can join the
        batch.  ``0.0`` (default) flushes immediately — batching then
        happens only while a flush is already in flight.  Raising it
        trades single-write commit latency for fewer, larger fsyncs under
        concurrent load.
    bootstrap_snapshot:
        A :class:`~repro.persistence.SnapshotState` to adopt as the initial
        in-memory state — the replication bootstrap path: a follower
        receives a primary's snapshot over the wire and constructs its
        service from it directly, with no storage directory of its own.
        Mutually exclusive with ``storage_dir``; the snapshot's shard
        count and name win exactly as a recovered on-disk snapshot's
        would.
    trace_sample_rate:
        Fraction of queries/ingests traced into a full span tree even
        without ``explain=True`` — deterministic accumulator sampling
        (0.01 = every 100th operation), so production always has recent
        traces to attribute latency with.  ``0.0`` disables sampling
        entirely: the untraced hot path allocates no spans at all.
        Callers that already carry a
        :class:`~repro.observability.tracing.TraceContext` (the RPC
        server continuing a client's trace) bypass local sampling — the
        propagated ``sampled`` flag wins either way.
    trace_store_capacity:
        Number of distinct recent traces the per-node
        :class:`~repro.observability.tracestore.TraceStore` ring keeps
        (served at ``/traces`` by the telemetry plane).
    slow_query_ms, slow_ingest_ms:
        Wall-clock thresholds above which a query (respectively an
        ingest or removal) emits one structured entry into the slow-op
        log.  ``None`` disables that kind of slow-op entry.
    slow_op_log_path:
        Optional file the slow-op log also appends to, one JSON line per
        entry (the in-memory ring behind :meth:`recent_slow_ops` is
        always active).
    slow_op_log_capacity:
        Size of the slow-op ring buffer (default 256 entries).
    expander, vectors, dictionaries, use_gsp, use_default_vectors:
        Forwarded to every shard's :class:`~repro.koko.engine.KokoEngine`.
    """

    def __init__(
        self,
        pipeline: Pipeline | None = None,
        name: str = "service",
        shards: int | None = None,
        columnar: bool = True,
        plan_cache_size: int = 256,
        result_cache_size: int = 256,
        result_cache_max_entry_bytes: int | None = None,
        max_workers: int = 4,
        annotation_workers: int | None = None,
        annotation_processes: bool = False,
        max_inflight_ingest_bytes: int | None = None,
        storage_dir: str | Path | None = None,
        checkpoint_policy: CheckpointPolicy | None = None,
        wal_sync: bool = True,
        sync_interval: float = 0.0,
        checkpoint_poll_seconds: float = 0.2,
        bootstrap_snapshot: SnapshotState | None = None,
        trace_sample_rate: float = 0.01,
        trace_store_capacity: int = 128,
        slow_query_ms: float | None = 250.0,
        slow_ingest_ms: float | None = 1000.0,
        slow_op_log_path: str | Path | None = None,
        slow_op_log_capacity: int = 256,
        slow_op_log_max_bytes: int | None = 16 * 1024 * 1024,
        expander: DescriptorExpander | None = None,
        vectors: VectorStore | None = None,
        dictionaries: dict[str, set[str]] | None = None,
        use_gsp: bool = True,
        use_default_vectors: bool = True,
    ) -> None:
        if shards is not None and shards <= 0:
            raise ServiceError(f"shards must be positive, got {shards}")
        if result_cache_max_entry_bytes is not None and result_cache_max_entry_bytes <= 0:
            raise ServiceError(
                f"result_cache_max_entry_bytes must be positive, got "
                f"{result_cache_max_entry_bytes}"
            )
        if max_inflight_ingest_bytes is not None and max_inflight_ingest_bytes <= 0:
            raise ServiceError(
                f"max_inflight_ingest_bytes must be positive, got "
                f"{max_inflight_ingest_bytes}"
            )
        if bootstrap_snapshot is not None and storage_dir is not None:
            raise ServiceError(
                "bootstrap_snapshot and storage_dir are mutually exclusive "
                "(a shipped snapshot bootstraps a memory-only follower)"
            )
        if not 0.0 <= trace_sample_rate <= 1.0:
            raise ServiceError(
                f"trace_sample_rate must be in [0, 1], got {trace_sample_rate}"
            )
        for label, threshold in (
            ("slow_query_ms", slow_query_ms),
            ("slow_ingest_ms", slow_ingest_ms),
        ):
            if threshold is not None and threshold < 0:
                raise ServiceError(f"{label} must be >= 0 or None, got {threshold}")
        self.pipeline = pipeline or Pipeline()

        # ---- durability: recover any existing on-disk state first, since
        # the persisted shard count and name define the topology we build.
        recovery_started = time.perf_counter()
        self._layout: StorageLayout | None = None
        self._wal: WriteAheadLog | None = None
        self._checkpoint_scheduler: CheckpointScheduler | None = None
        self._checkpoint_policy = checkpoint_policy or CheckpointPolicy()
        self._checkpoint_lock = threading.Lock()
        self._checkpoint_id = 0
        self._ops_since_checkpoint = 0
        self._last_checkpoint_monotonic = time.monotonic()
        self._closed = False
        self._wal_sync = wal_sync
        self._wal_sync_interval = sync_interval
        recovered = None
        if storage_dir is not None:
            self._layout = StorageLayout(storage_dir)
            self._layout.initialise()
            recovered = RecoveryManager(self._layout).recover()
            if recovered.snapshot is not None:
                if shards is not None and shards != recovered.snapshot.num_shards:
                    raise ServiceError(
                        f"storage at {storage_dir} holds {recovered.snapshot.num_shards} "
                        f"shard(s) but {shards} were requested"
                    )
                shards = recovered.snapshot.num_shards
                name = recovered.snapshot.name
        elif bootstrap_snapshot is not None:
            if shards is not None and shards != bootstrap_snapshot.num_shards:
                raise ServiceError(
                    f"bootstrap snapshot holds {bootstrap_snapshot.num_shards} "
                    f"shard(s) but {shards} were requested"
                )
            shards = bootstrap_snapshot.num_shards
            name = bootstrap_snapshot.name

        shards = shards if shards is not None else 1
        self.name = name
        if vectors is None and use_default_vectors:
            from ..embeddings.pretrained import build_default_vectors

            vectors = build_default_vectors()  # memoized; shared by all shards
        engine_kwargs = dict(
            expander=expander,
            vectors=vectors,
            dictionaries=dictionaries,
            use_gsp=use_gsp,
            use_default_vectors=use_default_vectors,
        )
        self.columnar = columnar
        self._index_set = ShardedIndexSet(shards, columnar=columnar)
        if recovered is not None and recovered.snapshot is not None:
            self._index_set.shards = list(recovered.snapshot.index_sets)
        elif bootstrap_snapshot is not None:
            self._index_set.shards = list(bootstrap_snapshot.index_sets)
        if columnar:
            # snapshots restore object-backed index sets (their on-disk
            # format is unchanged); convert them in place before the shard
            # façades capture references
            self._index_set.to_columnar()
        self._shards = [
            _Shard(i, f"{name}/shard{i}", self._index_set.shards[i], engine_kwargs)
            for i in range(shards)
        ]
        self.max_workers = max_workers
        self.stats = ServiceStats()
        # tracing + slow-op log share the stats registry, so one
        # render_text() exposes the whole service
        self._tracer = Tracer(trace_sample_rate)
        self._trace_store = TraceStore(trace_store_capacity)
        # advisory: how many WAL records carried a trace context — the
        # shipper only pays per-record payload decodes once this is > 0
        self._wal_traces_logged = 0
        self._slow_query_ms = slow_query_ms
        self._slow_ingest_ms = slow_ingest_ms
        self._slow_log = SlowOpLog(
            capacity=slow_op_log_capacity,
            path=str(slow_op_log_path) if slow_op_log_path is not None else None,
            max_file_bytes=slow_op_log_max_bytes,
        )
        # per-shard heat signals (queries, skip candidates, splice bytes,
        # EWMA stage latency) — the split-victim-selection substrate;
        # mirrored into the same registry for /metrics scrapes
        self._heat = ShardHeatAccumulator(shards, registry=self.stats.registry)
        self._traces_sampled = self.stats.registry.counter(
            "koko_traces_sampled_total", "Operations traced into a span tree."
        )
        self._slow_ops = self.stats.registry.counter(
            "koko_slow_ops_total",
            "Operations that crossed their slow-op threshold.",
            labelnames=("kind",),
        )
        self._plan_cache = PlanCache(plan_cache_size)
        self._result_cache: ResultCache[KokoResult] = ResultCache(
            result_cache_size,
            on_evict=self.stats.record_result_cache_eviction,
            max_entry_bytes=result_cache_max_entry_bytes,
            entry_bytes=KokoResult.approximate_bytes,
            on_admission_skip=self.stats.record_result_cache_admission_skip,
        )
        # per-(query, shard) partials, one cache per shard so each shard's
        # own generation stamps its entries and hit/miss/eviction counters
        # attribute cleanly — the unit of reuse that survives other shards'
        # ingests, and the raw data of the cache-sizing question
        self._shard_result_caches: list[ResultCache[KokoResult]] = [
            ResultCache(
                result_cache_size,
                on_evict=partial(self._record_shard_cache_eviction, shard_id),
                max_entry_bytes=result_cache_max_entry_bytes,
                entry_bytes=KokoResult.approximate_bytes,
                on_admission_skip=partial(
                    self.stats.record_shard_cache_admission_skip, shard_id
                ),
            )
            for shard_id in range(shards)
        ]
        # Serialises the *metadata* of corpus mutation — sid reservation,
        # doc-id claims, routing, generation finalisation — without ever
        # blocking the per-shard read side.  Annotation, WAL fsync (add
        # path) and posting splices all run outside it.  The condition
        # carries the ingest drain barrier checkpoints use.
        self._meta_lock = threading.Lock()
        self._meta_cond = threading.Condition(self._meta_lock)
        self._doc_shard: dict[str, int] = {}
        self._pending_docs: set[str] = set()
        self._pending_removes: set[str] = set()
        self._sid_reservations: dict[int, int] = {}  # base sid -> reserved count
        self._inflight_ingests = 0
        self._ingest_barrier = 0
        # admission control: text bytes of claimed-but-uncommitted ingests
        self._max_inflight_ingest_bytes = max_inflight_ingest_bytes
        self._inflight_ingest_bytes = 0
        self._claimed_ingest_bytes: dict[str, int] = {}  # doc id -> admitted bytes
        self._ingest_admission: deque = deque()  # FIFO claim tickets
        # WAL retention pins (log shipping): callables returning the lowest
        # segment id a subscriber still needs, or None when idle
        self._wal_pins: list = []
        self._next_sid = 0
        self._generations = [0] * shards
        self._shard_pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(max_workers=shards, thread_name_prefix="koko-shard")
            if shards > 1
            else None
        )
        # Async front end: asyncio wrappers run the blocking calls here so
        # the event loop never blocks on annotation, fsyncs or execution.
        self._frontend_pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="koko-frontend"
        )
        # Optional annotation pool for the off-lock annotation stage.
        self._annotation_processes = annotation_processes
        self._annotation_pool: Executor | None = None
        if annotation_workers is not None and annotation_workers > 0:
            if annotation_processes:
                import multiprocessing

                # never fork: the service already runs threads (checkpoint
                # scheduler, pools) and forking a multithreaded process can
                # deadlock the children.  forkserver/spawn start workers
                # from a clean process; everything they need is pickled
                # (the pipeline via the initializer, module-level task fns).
                methods = multiprocessing.get_all_start_methods()
                context = multiprocessing.get_context(
                    "forkserver" if "forkserver" in methods else "spawn"
                )
                self._annotation_pool = ProcessPoolExecutor(
                    max_workers=annotation_workers,
                    mp_context=context,
                    initializer=_init_annotation_worker,
                    initargs=(self.pipeline,),
                )
                # Worker processes spawn lazily, one per submit that finds
                # no idle worker — which would ramp the pool up under the
                # first real burst.  Kick off every worker now (the warm
                # tasks return immediately; initialisation proceeds in the
                # background without blocking construction).
                for _ in range(annotation_workers):
                    self._annotation_pool.submit(_warm_annotation_worker)
            else:
                self._annotation_pool = ThreadPoolExecutor(
                    max_workers=annotation_workers, thread_name_prefix="koko-annotate"
                )

        if recovered is not None:
            self._finish_recovery(recovered)
            self.stats.record_recovery(
                time.perf_counter() - recovery_started,
                documents=len(self._doc_shard),
                replayed=len(recovered.operations),
                torn_tail=recovered.torn_tail,
            )
            self._checkpoint_scheduler = CheckpointScheduler(
                self._maybe_checkpoint, poll_seconds=checkpoint_poll_seconds
            )
            self._checkpoint_scheduler.start()
        elif bootstrap_snapshot is not None:
            self._adopt_snapshot(bootstrap_snapshot)
            self.stats.record_recovery(
                time.perf_counter() - recovery_started,
                documents=len(self._doc_shard),
                replayed=0,
                torn_tail=False,
            )

    # ------------------------------------------------------------------
    # durability lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, storage_dir: str | Path, **kwargs) -> "KokoService":
        """Open (or create) a durable service rooted at *storage_dir*.

        Sugar for ``KokoService(storage_dir=storage_dir, **kwargs)``: an
        existing directory restarts warm — latest valid snapshot plus WAL
        tail, zero re-annotation — and a missing one is initialised.
        """
        return cls(storage_dir=storage_dir, **kwargs)

    def _adopt_snapshot(self, snapshot: SnapshotState) -> None:
        """Attach a restored snapshot's documents and counters to the shards.

        Shared by on-disk recovery and the replication bootstrap: the
        index sets were already installed at construction; this wires the
        documents, routing table, sid counter and generation stamps.
        """
        for shard_id, shard in enumerate(self._shards):
            documents = snapshot.documents_by_shard[shard_id]
            shard.adopt(documents)
            for document in documents:
                self._doc_shard[document.doc_id] = shard_id
        self._next_sid = snapshot.next_sid
        self._generations = list(snapshot.generations)
        self._checkpoint_id = snapshot.checkpoint_id

    def _finish_recovery(self, recovered) -> None:
        """Adopt the snapshot, replay the WAL tail, and open the live WAL."""
        assert self._layout is not None
        if recovered.snapshot is not None:
            self._adopt_snapshot(recovered.snapshot)
        for record in recovered.operations:
            if record.op == OP_ADD:
                if record.document is None or record.doc_id in self._doc_shard:
                    raise PersistenceError(
                        f"WAL replay: bad add record for {record.doc_id!r}"
                    )
                self._apply_add_locked(record.document)
            elif record.op == OP_REMOVE:
                if record.doc_id not in self._doc_shard:
                    raise PersistenceError(
                        f"WAL replay: remove of unknown document {record.doc_id!r}"
                    )
                self._apply_remove_locked(record.doc_id)
            else:  # pragma: no cover - defensive
                raise PersistenceError(f"WAL replay: unknown op {record.op!r}")
        self._wal = WriteAheadLog(
            self._layout,
            recovered.active_segment_id,
            sync=self._wal_sync,
            truncate_to=recovered.active_segment_valid_bytes,
            sync_interval=self._wal_sync_interval,
            on_fsync=self.stats.record_wal_fsync,
        )
        # Replayed operations are only durable in the WAL tail; fold them
        # into a checkpoint so the next restart is one load.  A directory
        # with no snapshot and nothing to replay (brand new, or a crash
        # before the first bootstrap completed) gets a bootstrap snapshot
        # that pins the shard topology.
        if recovered.operations:
            self._ops_since_checkpoint = len(recovered.operations)
            self.checkpoint()
        elif recovered.snapshot is None:
            self._write_bootstrap_snapshot()

    def _write_bootstrap_snapshot(self) -> None:
        """Persist the empty topology (shard count, name) as checkpoint 0."""
        assert self._layout is not None
        state = self._capture_snapshot_state(checkpoint_id=0)
        write_snapshot(self._layout, state)
        self._layout.write_current(0)

    def _capture_snapshot_state(self, checkpoint_id: int) -> SnapshotState:
        """Materialise every shard under its read lock (readers unaffected)."""
        databases: list[Database] = []
        documents_by_shard: list[list[Document]] = []
        build_seconds: list[float] = []
        for shard in self._shards:
            with shard.lock.read_locked():
                database = Database(name=f"{self.name}-shard{shard.shard_id}")
                shard.indexes.to_database(database, create_indexes=False)
                databases.append(database)
                documents_by_shard.append(list(shard.corpus.documents))
                build_seconds.append(shard.indexes.build_seconds)
        return SnapshotState(
            checkpoint_id=checkpoint_id,
            name=self.name,
            num_shards=len(self._shards),
            next_sid=self._next_sid,
            generations=list(self._generations),
            documents_by_shard=documents_by_shard,
            build_seconds_by_shard=build_seconds,
            databases=databases,
        )

    def checkpoint(self) -> int | None:
        """Fold the write-ahead log into a fresh snapshot.

        Raises the ingest drain barrier (staged ingests that already
        reserved ids finish; new claims wait), rotates the WAL, captures
        every shard under its *read* lock (readers keep running), writes
        the versioned snapshot, atomically repoints ``CURRENT`` and prunes
        superseded snapshots and segments.  Returns the new checkpoint id,
        or ``None`` when nothing was logged since the last checkpoint.

        Raises :class:`ServiceError` on a memory-only service.
        """
        if self._wal is None or self._layout is None:
            raise ServiceError("service has no storage_dir to checkpoint into")
        started = time.perf_counter()
        # the in-progress gauge brackets the whole attempt (including the
        # drain wait), so a wedged checkpointer is visible from outside
        self.stats.record_checkpoint_started()
        try:
            with self._checkpoint_lock:
                with self._meta_cond:
                    # Drain: a staged ingest may have appended to the WAL but
                    # not yet spliced; rotating under it would strand a logged
                    # operation in a segment the checkpoint claims to cover.
                    self._ingest_barrier += 1
                    try:
                        while self._inflight_ingests:
                            self._meta_cond.wait()
                        if self._ops_since_checkpoint == 0:
                            return None
                        sealed = self._wal.rotate()
                        state = self._capture_snapshot_state(checkpoint_id=sealed)
                        self._ops_since_checkpoint = 0
                        self._last_checkpoint_monotonic = time.monotonic()
                    finally:
                        self._ingest_barrier -= 1
                        self._meta_cond.notify_all()
                # File writes happen outside the meta lock: the captured state
                # is immutable (fresh Database objects; documents are never
                # mutated after ingest), so writers proceed while we fsync.
                write_snapshot(self._layout, state)
                self._layout.write_current(sealed)
                self._layout.prune(sealed, wal_keep_from=self._wal_pin_floor())
                self._checkpoint_id = sealed
            self.stats.record_checkpoint(time.perf_counter() - started, sealed)
            return sealed
        finally:
            self.stats.record_checkpoint_finished()

    def _maybe_checkpoint(self) -> None:
        """Background heartbeat: checkpoint when the policy says it is due."""
        if self._closed or self._wal is None:
            return
        elapsed = time.monotonic() - self._last_checkpoint_monotonic
        if self._checkpoint_policy.due(
            self._ops_since_checkpoint, self._wal.active_bytes, elapsed
        ):
            try:
                self.checkpoint()
            except Exception as exc:
                # The WAL stays the source of durability; surface the
                # failure in the stats instead of dying silently (the next
                # heartbeat, or an explicit checkpoint(), retries).
                self.stats.record_checkpoint_failure(repr(exc))

    @property
    def storage_dir(self) -> Path | None:
        """Root of the durability layout, or None for a memory-only service."""
        return self._layout.root if self._layout is not None else None

    # ------------------------------------------------------------------
    # replication hooks (see repro.replication)
    # ------------------------------------------------------------------
    def wal_position(self) -> WalPosition | None:
        """The durable end of the write-ahead log, or None when memory-only.

        Monotonic across rotations, so it works as a *read-your-writes*
        token: a position captured after :meth:`add_document` returns
        covers that document (the record was fsynced before the return),
        and a replica whose applied position is ``>=`` the token has the
        write.
        """
        wal = self._wal
        return wal.durable_position() if wal is not None else None

    def register_wal_pin(self, pin) -> None:
        """Register a WAL retention pin (a log-shipping subscriber).

        *pin* is a callable returning the lowest WAL segment id the
        subscriber still needs, or ``None`` when it needs nothing.
        Checkpoints keep every segment at or above the lowest pinned id
        when pruning, so a follower tailing segment *N* never has it
        folded away mid-read.
        """
        with self._meta_lock:
            self._wal_pins.append(pin)

    def unregister_wal_pin(self, pin) -> None:
        """Drop a previously registered retention pin (idempotent)."""
        with self._meta_lock:
            if pin in self._wal_pins:
                self._wal_pins.remove(pin)

    def _wal_pin_floor(self) -> int | None:
        """The lowest WAL segment id any registered pin still needs."""
        with self._meta_lock:
            pins = list(self._wal_pins)
        floors = []
        for pin in pins:
            try:
                floor = pin()
            except Exception:  # pragma: no cover - defensive: a dying
                continue  # subscriber must not wedge checkpoints
            if floor is not None:
                floors.append(floor)
        return min(floors, default=None)

    def apply_replicated(self, record: WalRecord) -> Document:
        """Apply one shipped WAL record to this service (replication follower).

        The replica-side splice path: the record is applied exactly as WAL
        replay would — same routing, same sid accounting, same generation
        bump — but nothing is logged locally (the primary's log is the
        source of truth).  Returns the added or removed document.  Raises
        :class:`PersistenceError` on a record inconsistent with the
        current state (duplicate add, remove of an unknown id), which on a
        follower means the stream diverged and a re-bootstrap is needed.
        """
        started = time.perf_counter()
        with self._meta_lock:
            self._ensure_open()
            if record.op == OP_ADD:
                if record.document is None or record.doc_id in self._doc_shard:
                    raise PersistenceError(
                        f"replicated add of {record.doc_id!r} is inconsistent "
                        f"with the follower state"
                    )
                document = record.document
                shard = self._apply_add_locked(document)
                shard_id, removed = shard.shard_id, False
            elif record.op == OP_REMOVE:
                if record.doc_id not in self._doc_shard:
                    raise PersistenceError(
                        f"replicated remove of unknown document {record.doc_id!r}"
                    )
                shard_id, document = self._apply_remove_locked(record.doc_id)
                removed = True
            else:
                raise PersistenceError(f"replicated record has unknown op {record.op!r}")
        elapsed = time.perf_counter() - started
        self.stats.record_ingest(
            elapsed,
            len(document),
            document.num_tokens,
            removed=removed,
            shard=shard_id,
        )
        self._heat.record_splice(
            shard_id, _estimate_document_bytes(document), elapsed
        )
        return document

    @property
    def checkpoint_id(self) -> int:
        """Id of the latest durable checkpoint (0 until the first one)."""
        return self._checkpoint_id

    # ------------------------------------------------------------------
    # ingestion (write side) — the staged concurrent pipeline
    # ------------------------------------------------------------------
    def add_document(
        self,
        text: str,
        doc_id: str | None = None,
        first_sid: int | None = None,
        wait_durable: bool = True,
        trace_context: TraceContext | None = None,
        client_id: str | None = None,
    ) -> Document | IngestAck:
        """Annotate *text* and fold it into its shard's corpus and indexes.

        The staged pipeline (see the module docstring): the meta lock is
        held only to claim the document id and reserve a sentence-id range
        (sized by a cheap sentence split); NLP annotation runs outside any
        lock — inline, or on the annotation pool when the service was
        built with ``annotation_workers``; the WAL append (durable via
        group commit) also runs off-lock; finally the postings splice
        write-locks exactly one shard.  Writers whose documents route to
        different shards therefore proceed in parallel end to end.

        Parameters
        ----------
        text:
            Raw document text.
        doc_id:
            Explicit document id; ``None`` assigns a fresh ``docN`` id.
            Ingesting an id that is live (or currently being ingested)
            raises :class:`ServiceError`.
        first_sid:
            Explicit first sentence id, for callers that pre-plan sid
            assignment (e.g. to make concurrent ingest bit-identical to a
            serial one).  Either a base previously handed out by
            :meth:`reserve_sids` (ranges may then be consumed in any
            order by any writer thread), or a fresh value ≥ the current
            :meth:`next_sid` (the counter advances past this document's
            range).  Anything else raises :class:`ServiceError`.
            ``None`` (default) reserves the next free range.
        trace_context:
            A propagated :class:`~repro.observability.tracing.TraceContext`
            (the RPC server continuing a client's trace).  Its ``sampled``
            flag replaces the local sampling decision; when sampled, the
            ingest's span tree joins that trace and the WAL record carries
            the context so shipper/replica spans join it too.
        client_id:
            The caller's identity (RPC admission id), recorded on slow-op
            entries for cross-linking.

        Durability: on a durable service the document is in the WAL —
        fsynced, group-committed — *before* it becomes visible to queries;
        when ``add_document`` returns, the operation survives a crash.

        ``wait_durable=False`` selects the **pipelined-ack** path: the WAL
        append is buffered (log order fixed) but the call returns after
        the splice without waiting for the fsync, handing back an
        :class:`IngestAck` whose ticket is the commit future.  The
        document is visible immediately; a crash before the ticket is
        waited on (or a later group commit covers it) may lose the
        operation.

        Returns the annotated :class:`~repro.nlp.types.Document` — or the
        :class:`IngestAck` wrapping it when ``wait_durable=False``.
        """
        started = time.perf_counter()
        # Stage 0 (no lock): a cheap sentence split sizes the sid range to
        # reserve.  Empty sentences are skipped by annotation, so a
        # reservation is an upper bound — unused sids become gaps, which
        # the sid-keyed indexes tolerate by construction.
        # The text is split again inside annotate(): the reservation must
        # be sized before annotation runs, and re-using the same splitter
        # keeps the count an exact upper bound of the sids annotate() will
        # assign.
        reserve = len(self.pipeline.tokenizer.split_sentences(text))
        resolved_id, base_sid, consumed = self._claim_ingest(
            doc_id, reserve, first_sid, ingest_bytes=len(text.encode("utf-8"))
        )
        trace: Span | None = None
        frag: TraceContext | None = None
        sampled = (
            trace_context.sampled
            if trace_context is not None
            else self._tracer.should_sample()
        )
        if sampled:
            self._traces_sampled.inc()
            frag = (
                trace_context.child()
                if trace_context is not None
                else TraceContext.root()
            )
            trace = Span("ingest", doc_id=resolved_id, trace_id=frag.trace_id)
        logged = False
        frame_bytes = 0
        try:
            # Stage 1 (no lock): heavy NLP annotation.
            stage_started = time.perf_counter()
            document = self._annotate_off_lock(text, resolved_id, base_sid)
            annotate_s = time.perf_counter() - stage_started
            if trace is not None:
                trace.record("annotate", annotate_s, sentences=len(document))
            # Stage 2 (no lock): write-ahead logging; group commit batches
            # concurrent fsyncs.  Durable before visible — unless the
            # caller opted into pipelined acks, where the fsync wait moves
            # behind the returned ticket and the splice proceeds at once.
            wal_span = trace.child("wal") if trace is not None else None
            stage_started = time.perf_counter()
            record = WalRecord(
                op=OP_ADD, doc_id=resolved_id, document=document, trace=frag
            )
            ticket: CommitTicket | None = None
            if wait_durable:
                frame_bytes = self._log(record, trace=wal_span)
            else:
                frame_bytes, ticket = self._log_pipelined(record, trace=wal_span)
            wal_s = time.perf_counter() - stage_started
            if wal_span is not None:
                wal_span.annotate(frame_bytes=frame_bytes)
                wal_span.finish()
            logged = self._wal is not None
            # Stage 3 (one shard's write lock): splice postings.
            stage_started = time.perf_counter()
            shard = self._splice_into_shard(document)
            splice_s = time.perf_counter() - stage_started
            if trace is not None:
                trace.record("splice", splice_s, shard=shard.shard_id)
        except BaseException:
            self._abort_ingest(resolved_id, logged=logged, reservation=consumed)
            raise
        self._commit_ingest(resolved_id, shard.shard_id)
        elapsed = time.perf_counter() - started
        self.stats.record_ingest(
            elapsed, len(document), document.num_tokens, shard=shard.shard_id
        )
        self._heat.record_splice(
            shard.shard_id,
            frame_bytes or _estimate_document_bytes(document),
            splice_s,
        )
        if trace is not None:
            trace.annotate(shard=shard.shard_id, tokens=document.num_tokens)
            trace.finish()
            self._trace_store.record(
                frag,
                trace,
                parent_span_id=(
                    trace_context.span_id if trace_context is not None else None
                ),
                kind="ingest",
                node=self.name,
            )
        self._observe_slow_ingest(
            "ingest",
            elapsed,
            doc_id=resolved_id,
            shard=shard.shard_id,
            stages={"annotate": annotate_s, "wal": wal_s, "splice": splice_s},
            frame_bytes=frame_bytes,
            sentences=len(document),
            tokens=document.num_tokens,
            trace=trace,
            trace_id=frag.trace_id if frag is not None else None,
            client_id=client_id,
        )
        if not wait_durable:
            return IngestAck(document=document, ticket=ticket)
        return document

    def add_documents(
        self,
        texts: list[str],
        doc_ids: list[str | None] | None = None,
        batch_size: int = 64,
        wait_durable: bool = True,
    ) -> list[Document]:
        """Bulk ingest, amortising the claim/commit rounds and the fsync.

        Documents are processed in chunks of *batch_size*; each chunk pays
        **one** meta-lock claim round (ids resolved, sid ranges reserved,
        admission checked once for the chunk's total bytes), annotates
        off-lock, appends every record to the WAL with a **single** group
        commit covering the chunk, splices grouped per shard (one write
        lock acquisition per touched shard), and publishes with **one**
        commit round.  Ingesting N documents therefore does at most
        ``ceil(N / batch_size)`` claim and commit rounds instead of N.

        ``doc_ids`` (optional) must match *texts* in length; ``None``
        entries get fresh ids.  ``wait_durable=False`` skips the per-chunk
        fsync wait entirely — call :meth:`wait_durable` afterwards to make
        the whole load durable with a single flush.

        A failure mid-chunk rolls that chunk back (compensating WAL
        removes for logged records, claims released); previously completed
        chunks stay committed.  Returns the annotated documents in input
        order.
        """
        texts = list(texts)
        if doc_ids is not None:
            doc_ids = list(doc_ids)
            if len(doc_ids) != len(texts):
                raise ServiceError(
                    f"doc_ids length {len(doc_ids)} != texts length {len(texts)}"
                )
        if batch_size < 1:
            raise ServiceError(f"batch_size must be >= 1, got {batch_size}")
        documents: list[Document] = []
        for start in range(0, len(texts), batch_size):
            chunk = texts[start : start + batch_size]
            chunk_ids = (
                doc_ids[start : start + batch_size]
                if doc_ids is not None
                else [None] * len(chunk)
            )
            documents.extend(
                self._add_documents_chunk(chunk, chunk_ids, wait_durable)
            )
        return documents

    def _add_documents_chunk(
        self, texts: list[str], doc_ids: list[str | None], wait_durable: bool
    ) -> list[Document]:
        """Ingest one bulk chunk: one claim, one fsync, one commit round."""
        started = time.perf_counter()
        reserves = [
            len(self.pipeline.tokenizer.split_sentences(text)) for text in texts
        ]
        sizes = [len(text.encode("utf-8")) for text in texts]
        claims = self._claim_ingest_batch(doc_ids, reserves, sizes)
        logged_ids: list[str] = []
        try:
            documents = [
                self._annotate_off_lock(text, resolved_id, base_sid)
                for text, (resolved_id, base_sid) in zip(texts, claims)
            ]
            # WAL appends are buffered; one group commit at the end covers
            # the whole chunk (~1 fsync instead of len(texts)).
            ticket: CommitTicket | None = None
            frame_total = 0
            for document in documents:
                appended, doc_ticket = self._log_pipelined(
                    WalRecord(op=OP_ADD, doc_id=document.doc_id, document=document)
                )
                frame_total += appended
                if doc_ticket is not None:
                    logged_ids.append(document.doc_id)
                    ticket = doc_ticket
            if wait_durable and ticket is not None:
                ticket.wait()  # durable before visible, amortised
            # Splice grouped per shard: one write-lock round per shard.
            by_shard: dict[int, list[Document]] = {}
            for document in documents:
                shard_id = self._index_set.shard_id(document.doc_id)
                by_shard.setdefault(shard_id, []).append(document)
            assignments: list[tuple[str, int]] = []
            for shard_id in sorted(by_shard):
                shard = self._shards[shard_id]
                shard_docs = by_shard[shard_id]
                splice_started = time.perf_counter()
                with shard.lock.write_locked():
                    for document in shard_docs:
                        shard.splice(document)
                    # one bump per document keeps generation counters
                    # identical to a record-at-a-time replica apply
                    self._generations[shard_id] += len(shard_docs)
                self._heat.record_splice(
                    shard_id,
                    sum(_estimate_document_bytes(d) for d in shard_docs),
                    time.perf_counter() - splice_started,
                )
                assignments.extend(
                    (document.doc_id, shard_id) for document in shard_docs
                )
        except BaseException:
            self._abort_ingest_batch(claims, logged_ids)
            raise
        self._commit_ingest_batch(assignments)
        per_doc = (time.perf_counter() - started) / max(len(documents), 1)
        shard_of = dict(assignments)
        for document in documents:
            self.stats.record_ingest(
                per_doc,
                len(document),
                document.num_tokens,
                shard=shard_of[document.doc_id],
            )
        return documents

    def wait_durable(self) -> WalPosition | None:
        """Make every operation logged before this call durable.

        The flush side of the pipelined-ack / bulk-load paths: drives one
        group commit over the WAL's buffered tail and returns the durable
        end of the log (``None`` on a memory-only service, where there is
        nothing to flush).
        """
        self._ensure_open()
        if self._wal is None:
            return None
        return self._wal.flush_durable()

    def add_annotated_document(self, document: Document) -> Document:
        """Ingest an already-annotated document.

        The document's sentence ids must be fresh; documents annotated with
        ``first_sid=service.next_sid()`` (or produced by this service's own
        pipeline flow) satisfy that.  Runs entirely under the meta lock —
        there is no annotation stage to pipeline — so it serialises with
        other metadata operations but never blocks shard readers for
        longer than the splice itself.
        """
        started = time.perf_counter()
        with self._meta_lock:
            self._ensure_open()
            if document.doc_id in self._doc_shard or document.doc_id in self._pending_docs:
                raise ServiceError(f"document id {document.doc_id!r} already ingested")
            for sentence in document:
                if sentence.sid < self._next_sid:
                    raise ServiceError(
                        f"sentence id {sentence.sid} of document "
                        f"{document.doc_id!r} is not fresh (next sid is "
                        f"{self._next_sid})"
                    )
            self._log(WalRecord(op=OP_ADD, doc_id=document.doc_id, document=document))
            shard = self._apply_add_locked(document)
            if self._wal is not None:
                self._ops_since_checkpoint += 1
        self.stats.record_ingest(
            time.perf_counter() - started,
            len(document),
            document.num_tokens,
            shard=shard.shard_id,
        )
        self._heat.record_splice(shard.shard_id, _estimate_document_bytes(document))
        return document

    def remove_document(
        self,
        doc_id: str,
        trace_context: TraceContext | None = None,
        client_id: str | None = None,
    ) -> Document:
        """Un-index and drop one document; returns it.

        Staged exactly like :meth:`add_document`: the meta lock is held
        only to *claim* the removal (validate the id, mark it in flight so
        checkpoints drain it and conflicting operations are rejected); the
        WAL append — one group commit, including any ``sync_interval``
        linger — runs **off every lock**; the un-splice then write-locks
        only the target shard.  No fsync ever happens under the meta lock,
        so removals never stall unrelated metadata operations (claims,
        reservations, other commits).

        Removing a document that is mid-ingest, or already mid-removal,
        raises :class:`ServiceError`.  On a durable service the removal is
        WAL-logged (and fsynced) *before* it is applied — durable before
        invisible.
        """
        started = time.perf_counter()
        document, shard_id = self._claim_remove(doc_id)
        trace: Span | None = None
        frag: TraceContext | None = None
        sampled = (
            trace_context.sampled
            if trace_context is not None
            else self._tracer.should_sample()
        )
        if sampled:
            self._traces_sampled.inc()
            frag = (
                trace_context.child()
                if trace_context is not None
                else TraceContext.root()
            )
            trace = Span("remove", doc_id=doc_id, trace_id=frag.trace_id)
        logged = False
        frame_bytes = 0
        try:
            # Off-lock: group-committed WAL append (durable before applied).
            wal_span = trace.child("wal") if trace is not None else None
            stage_started = time.perf_counter()
            frame_bytes = self._log(
                WalRecord(op=OP_REMOVE, doc_id=doc_id, trace=frag), trace=wal_span
            )
            wal_s = time.perf_counter() - stage_started
            if wal_span is not None:
                wal_span.annotate(frame_bytes=frame_bytes)
                wal_span.finish()
            logged = self._wal is not None
            # One shard's write lock: un-splice the postings.
            stage_started = time.perf_counter()
            shard = self._shards[shard_id]
            with shard.lock.write_locked():
                shard.unsplice(document)
                self._generations[shard_id] += 1
            unsplice_s = time.perf_counter() - stage_started
            if trace is not None:
                trace.record("unsplice", unsplice_s, shard=shard_id)
        except BaseException:
            self._abort_remove(doc_id, document if logged else None)
            raise
        self._commit_remove(doc_id)
        elapsed = time.perf_counter() - started
        self.stats.record_ingest(
            elapsed,
            len(document),
            document.num_tokens,
            removed=True,
            shard=shard_id,
        )
        self._heat.record_splice(
            shard_id,
            frame_bytes or _estimate_document_bytes(document),
            unsplice_s,
        )
        if trace is not None:
            trace.annotate(shard=shard_id)
            trace.finish()
            self._trace_store.record(
                frag,
                trace,
                parent_span_id=(
                    trace_context.span_id if trace_context is not None else None
                ),
                kind="ingest",
                node=self.name,
            )
        self._observe_slow_ingest(
            "remove",
            elapsed,
            doc_id=doc_id,
            shard=shard_id,
            stages={"wal": wal_s, "unsplice": unsplice_s},
            frame_bytes=frame_bytes,
            sentences=len(document),
            tokens=document.num_tokens,
            trace=trace,
            trace_id=frag.trace_id if frag is not None else None,
            client_id=client_id,
        )
        return document

    def reserve_sids(self, count: int) -> int:
        """Atomically reserve a contiguous range of *count* sentence ids.

        Returns the range's first sid.  Pass it later as ``first_sid`` to
        :meth:`add_document` — reserved ranges may be consumed in any
        order by any writer thread, which is how concurrent ingest can be
        made **sid-identical** to a serial one: pre-plan every document's
        range in a deterministic order, then ingest in parallel.  Size a
        document's reservation with the **raw sentence-split count** —
        ``len(pipeline.tokenizer.split_sentences(text))`` — which is what
        the unreserved path uses; annotation may skip empty sentences, so
        the actual documents can use fewer ids.  A range that is reserved
        but never consumed (or only partially consumed) leaves a harmless
        gap; sids only need to be unique and monotonic per reservation.
        A zero-width request still reserves one id (so every reservation
        has a distinct base); the unused id is another gap.
        """
        if count < 0:
            raise ServiceError(f"cannot reserve a negative sid range ({count})")
        with self._meta_lock:
            self._ensure_open()
            base = self._next_sid
            self._next_sid += max(count, 1)
            self._sid_reservations[base] = count
            return base

    # -- staged-pipeline plumbing --------------------------------------
    def _claim_ingest(
        self,
        doc_id: str | None,
        reserve: int,
        first_sid: int | None,
        ingest_bytes: int = 0,
    ) -> tuple[str, int, tuple[int, int] | None]:
        """Claim a doc id and reserve a sid range (meta lock, microseconds).

        Returns ``(resolved_id, base_sid, consumed_reservation)`` — the
        last element is the ``(base, count)`` of a :meth:`reserve_sids`
        reservation this claim consumed (so an aborted ingest can restore
        it), or ``None``.  The claim blocks while a checkpoint drain
        barrier is up — or, with ``max_inflight_ingest_bytes`` set, while
        admitting *ingest_bytes* would push the in-flight annotation bytes
        over the bound (backpressure; an oversized document is still
        admitted once the pipeline is empty, so nothing deadlocks) — and
        marks the ingest in-flight so checkpoints wait for it
        symmetrically.  Admission is FIFO, so a large blocked document is
        never starved by smaller claims arriving behind it.
        """
        with self._meta_cond:
            # admission is FIFO (ticketed): without an order, a large
            # document blocked on the byte budget could be starved forever
            # by a stream of small claims slipping into the headroom
            ticket = object()
            self._ingest_admission.append(ticket)
            try:
                waited_for_admission = False
                while True:
                    over_budget = (
                        self._max_inflight_ingest_bytes is not None
                        and self._inflight_ingest_bytes > 0
                        and self._inflight_ingest_bytes + ingest_bytes
                        > self._max_inflight_ingest_bytes
                    )
                    if (
                        not self._ingest_barrier
                        and self._ingest_admission[0] is ticket
                        and not over_budget
                    ):
                        break
                    if not self._ingest_barrier and not waited_for_admission:
                        waited_for_admission = True
                        self.stats.record_backpressure_wait()
                    self._meta_cond.wait()
            finally:
                # admitted (or raising): stop gating the claims behind us.
                # The rest of the claim runs without releasing the lock, so
                # dropping the ticket here cannot let anyone overtake.
                self._ingest_admission.remove(ticket)
                self._meta_cond.notify_all()
            self._ensure_open()
            resolved = doc_id if doc_id is not None else self._fresh_doc_id()
            if resolved in self._doc_shard or resolved in self._pending_docs:
                raise ServiceError(f"document id {resolved!r} already ingested")
            consumed: tuple[int, int] | None = None
            if first_sid is not None:
                reserved = self._sid_reservations.get(first_sid)
                if reserved is not None:
                    if reserved < reserve:
                        # leave the reservation intact: the caller can
                        # retry with a correctly sized range
                        raise ServiceError(
                            f"sid range at {first_sid} reserved {reserved} ids "
                            f"but the document needs {reserve} (size "
                            f"reservations with tokenizer.split_sentences)"
                        )
                    del self._sid_reservations[first_sid]
                    consumed = (first_sid, reserved)
                elif first_sid >= self._next_sid:
                    self._next_sid = first_sid + reserve
                else:
                    raise ServiceError(
                        f"first_sid {first_sid} is neither a reserved range "
                        f"nor fresh (next sid is {self._next_sid})"
                    )
                base = first_sid
            else:
                base = self._next_sid
                self._next_sid += reserve
            self._pending_docs.add(resolved)
            self._inflight_ingests += 1
            if ingest_bytes:
                self._inflight_ingest_bytes += ingest_bytes
                self._claimed_ingest_bytes[resolved] = ingest_bytes
            return resolved, base, consumed

    def _annotate_off_lock(self, text: str, doc_id: str, first_sid: int) -> Document:
        """Run NLP annotation with no service lock held (stage 1)."""
        pool = self._annotation_pool
        if pool is None:
            return self.pipeline.annotate(text, doc_id=doc_id, first_sid=first_sid)
        if self._annotation_processes:
            return pool.submit(_annotate_in_worker, text, doc_id, first_sid).result()
        return pool.submit(
            self.pipeline.annotate, text, doc_id=doc_id, first_sid=first_sid
        ).result()

    def _splice_into_shard(self, document: Document) -> _Shard:
        """Splice postings under only the target shard's write lock (stage 3)."""
        shard = self._shards[self._index_set.shard_id(document.doc_id)]
        with shard.lock.write_locked():
            shard.splice(document)
            self._generations[shard.shard_id] += 1
        return shard

    def _commit_ingest(self, doc_id: str, shard_id: int) -> None:
        """Publish a finished staged ingest (meta lock, microseconds)."""
        with self._meta_cond:
            self._doc_shard[doc_id] = shard_id
            self._pending_docs.discard(doc_id)
            self._inflight_ingest_bytes -= self._claimed_ingest_bytes.pop(doc_id, 0)
            if self._wal is not None:
                self._ops_since_checkpoint += 1
            self._inflight_ingests -= 1
            self._meta_cond.notify_all()

    def _abort_ingest(
        self,
        doc_id: str,
        logged: bool = False,
        reservation: tuple[int, int] | None = None,
    ) -> None:
        """Roll back a failed staged ingest.

        A consumed :meth:`reserve_sids` *reservation* is restored so the
        caller can retry a transient failure with the same planned
        ``first_sid``; an implicit sid range simply leaks (a harmless gap
        — sids only need to be unique and monotonic).

        When the add was already WAL-logged (the failure struck between
        the durable append and the splice), a compensating remove record
        is appended so replay nets to nothing — otherwise a restart would
        resurrect a document whose ingest the caller saw fail, and a
        successful retry of the same doc id would make replay see two
        adds for one id and refuse to open the store.
        """
        if logged:
            try:
                self._log(WalRecord(op=OP_REMOVE, doc_id=doc_id))
            except Exception:
                # The WAL itself is failing; the original error (about to
                # propagate from the caller) is the actionable one.  The
                # orphaned add record can at worst resurrect this document
                # on restart.
                pass
        with self._meta_cond:
            self._pending_docs.discard(doc_id)
            self._inflight_ingest_bytes -= self._claimed_ingest_bytes.pop(doc_id, 0)
            if reservation is not None:
                self._sid_reservations.setdefault(*reservation)
            self._inflight_ingests -= 1
            if logged and self._wal is not None:
                # the add + compensating remove both count toward the
                # checkpoint policy's ops threshold
                self._ops_since_checkpoint += 2
            self._meta_cond.notify_all()

    def _claim_ingest_batch(
        self,
        doc_ids: list[str | None],
        reserves: list[int],
        sizes: list[int],
    ) -> list[tuple[str, int]]:
        """Claim a whole bulk chunk in one meta-lock round.

        The batch analogue of :meth:`_claim_ingest`: one FIFO admission
        ticket covers the chunk (its total bytes are admitted together, so
        backpressure sees the true load), every id is resolved/validated
        and every sid range reserved under a single lock acquisition, and
        the chunk counts as **one** in-flight unit for the checkpoint
        drain barrier.  Returns ``(resolved_id, base_sid)`` per document.
        On any validation failure the whole chunk's claims are released
        before the error propagates — bulk claims are all-or-nothing.
        """
        total_bytes = sum(sizes)
        with self._meta_cond:
            ticket = object()
            self._ingest_admission.append(ticket)
            try:
                waited_for_admission = False
                while True:
                    over_budget = (
                        self._max_inflight_ingest_bytes is not None
                        and self._inflight_ingest_bytes > 0
                        and self._inflight_ingest_bytes + total_bytes
                        > self._max_inflight_ingest_bytes
                    )
                    if (
                        not self._ingest_barrier
                        and self._ingest_admission[0] is ticket
                        and not over_budget
                    ):
                        break
                    if not self._ingest_barrier and not waited_for_admission:
                        waited_for_admission = True
                        self.stats.record_backpressure_wait()
                    self._meta_cond.wait()
            finally:
                self._ingest_admission.remove(ticket)
                self._meta_cond.notify_all()
            self._ensure_open()
            claims: list[tuple[str, int]] = []
            try:
                for doc_id, reserve, size in zip(doc_ids, reserves, sizes):
                    resolved = (
                        doc_id if doc_id is not None else self._fresh_doc_id()
                    )
                    if resolved in self._doc_shard or resolved in self._pending_docs:
                        raise ServiceError(
                            f"document id {resolved!r} already ingested"
                        )
                    base = self._next_sid
                    self._next_sid += reserve
                    # marking pending as we go keeps later ids in the same
                    # chunk (and _fresh_doc_id) from colliding with this one
                    self._pending_docs.add(resolved)
                    if size:
                        self._claimed_ingest_bytes[resolved] = size
                    claims.append((resolved, base))
            except BaseException:
                for resolved, _ in claims:
                    self._pending_docs.discard(resolved)
                    self._claimed_ingest_bytes.pop(resolved, None)
                self._meta_cond.notify_all()
                raise
            self._inflight_ingests += 1
            self._inflight_ingest_bytes += total_bytes
            return claims

    def _commit_ingest_batch(self, assignments: list[tuple[str, int]]) -> None:
        """Publish a finished bulk chunk in one meta-lock round."""
        with self._meta_cond:
            for doc_id, shard_id in assignments:
                self._doc_shard[doc_id] = shard_id
                self._pending_docs.discard(doc_id)
                self._inflight_ingest_bytes -= self._claimed_ingest_bytes.pop(
                    doc_id, 0
                )
            if self._wal is not None:
                self._ops_since_checkpoint += len(assignments)
            self._inflight_ingests -= 1
            self._meta_cond.notify_all()

    def _abort_ingest_batch(
        self, claims: list[tuple[str, int]], logged_ids: list[str]
    ) -> None:
        """Roll back a failed bulk chunk.

        Appends compensating removes for every record the chunk already
        logged (replay nets to nothing, as in :meth:`_abort_ingest`) and
        releases every claim in one meta-lock round.  Implicit sid ranges
        leak as harmless gaps.
        """
        for doc_id in logged_ids:
            try:
                self._log(WalRecord(op=OP_REMOVE, doc_id=doc_id))
            except Exception:
                pass  # the original chunk failure is the actionable error
        with self._meta_cond:
            for doc_id, _ in claims:
                self._pending_docs.discard(doc_id)
                self._inflight_ingest_bytes -= self._claimed_ingest_bytes.pop(
                    doc_id, 0
                )
            if logged_ids and self._wal is not None:
                self._ops_since_checkpoint += 2 * len(logged_ids)
            self._inflight_ingests -= 1
            self._meta_cond.notify_all()

    def _claim_remove(self, doc_id: str) -> tuple[Document, int]:
        """Claim a staged removal (meta lock, microseconds).

        Validates the id, marks it mid-removal (conflicting adds and
        removes are rejected until commit/abort) and counts the operation
        in flight so checkpoint drains cover it.  Returns the live
        document and its shard — stable for the duration of the claim:
        nothing else may touch a claimed id.
        """
        with self._meta_cond:
            while self._ingest_barrier:
                self._meta_cond.wait()
            self._ensure_open()
            if doc_id in self._pending_docs:
                raise ServiceError(f"document id {doc_id!r} is still being ingested")
            if doc_id in self._pending_removes:
                raise ServiceError(f"document id {doc_id!r} is already being removed")
            if doc_id not in self._doc_shard:
                raise ServiceError(f"unknown document id {doc_id!r}")
            shard_id = self._doc_shard[doc_id]
            document = self._shards[shard_id].documents.get(doc_id)
            if document is None:
                # a previous removal failed partway through its un-splice:
                # the id is routed but the document is gone from the shard
                raise ServiceError(
                    f"document id {doc_id!r} is in an inconsistent state "
                    f"after a failed removal; reopen the service to replay "
                    f"the durable history"
                )
            self._pending_removes.add(doc_id)
            self._inflight_ingests += 1
            return document, shard_id

    def _commit_remove(self, doc_id: str) -> None:
        """Publish a finished staged removal (meta lock, microseconds)."""
        with self._meta_cond:
            self._doc_shard.pop(doc_id, None)
            self._pending_removes.discard(doc_id)
            if self._wal is not None:
                self._ops_since_checkpoint += 1
            self._inflight_ingests -= 1
            self._meta_cond.notify_all()

    def _abort_remove(self, doc_id: str, logged_document: Document | None) -> None:
        """Roll back a failed staged removal.

        When the removal was already WAL-logged but the un-splice failed
        (*logged_document* is the still-live document), a compensating
        ``add`` record is appended so replay nets to nothing — otherwise a
        restart would drop a document whose removal the caller saw fail.
        """
        if logged_document is not None:
            try:
                self._log(
                    WalRecord(
                        op=OP_ADD,
                        doc_id=doc_id,
                        document=logged_document,
                    )
                )
            except Exception:
                # The WAL itself is failing; the original error (about to
                # propagate) is the actionable one.  The orphaned remove
                # record can at worst drop this document on restart.
                pass
        with self._meta_cond:
            self._pending_removes.discard(doc_id)
            if logged_document is not None and self._wal is not None:
                self._ops_since_checkpoint += 2
            self._inflight_ingests -= 1
            self._meta_cond.notify_all()

    def _log(self, record: WalRecord, trace: Span | None = None) -> int:
        """Write-ahead: make one operation durable before applying it.

        Thread-safe; concurrent calls coalesce their fsyncs (group
        commit).  A no-op on a memory-only service.  Returns the appended
        frame size in bytes (0 when memory-only).  ``trace`` is forwarded
        to the WAL for ``wal_append``/``fsync_wait`` child spans.
        """
        if self._wal is not None:
            if record.trace is not None:
                self._wal_traces_logged += 1
            appended = self._wal.append(record, trace=trace)
            self.stats.record_wal_append(appended)
            return appended
        return 0

    def _log_pipelined(
        self, record: WalRecord, trace: Span | None = None
    ) -> tuple[int, CommitTicket | None]:
        """Buffered write-ahead append that does not wait for the fsync.

        Returns ``(frame_bytes, ticket)`` — the ticket is the commit
        future (``None`` on a memory-only service).  Log *order* is fixed
        when this returns; durability arrives when the ticket is waited on
        or any later group commit covers the frame.
        """
        if self._wal is not None:
            if record.trace is not None:
                self._wal_traces_logged += 1
            appended, ticket = self._wal.append_pipelined(record, trace=trace)
            self.stats.record_wal_append(appended)
            return appended, ticket
        return 0, None

    def _apply_add_locked(self, document: Document) -> _Shard:
        """Route and splice one document under the meta lock (replay path,
        ``add_annotated_document``); updates the sid counter from the
        document's actual sids."""
        self._next_sid = max(
            self._next_sid, max((s.sid for s in document), default=self._next_sid - 1) + 1
        )
        shard = self._shards[self._index_set.shard_id(document.doc_id)]
        self._doc_shard[document.doc_id] = shard.shard_id
        with shard.lock.write_locked():
            shard.splice(document)
            self._generations[shard.shard_id] += 1
        return shard

    def _apply_remove_locked(self, doc_id: str) -> tuple[int, Document]:
        """Remove one document from its shard (meta lock held)."""
        shard_id = self._doc_shard.pop(doc_id)
        shard = self._shards[shard_id]
        with shard.lock.write_locked():
            document = shard.documents[doc_id]
            shard.unsplice(document)
            self._generations[shard_id] += 1
        return shard_id, document

    def _fresh_doc_id(self) -> str:
        """A doc id not currently live or mid-ingest (meta lock held)."""
        candidate = f"doc{len(self._doc_shard) + len(self._pending_docs)}"
        while candidate in self._doc_shard or candidate in self._pending_docs:
            candidate = candidate + "_"
        return candidate

    def _ensure_open(self) -> None:
        """Raise :class:`ServiceError` when the service has been closed."""
        if self._closed:
            raise ServiceError("service is closed")

    # ------------------------------------------------------------------
    # querying (read side)
    # ------------------------------------------------------------------
    def query(
        self,
        query: str | KokoQuery | CompiledQuery,
        threshold_override: float | None = None,
        keep_all_scores: bool = False,
        explain: bool = False,
        deadline: float | None = None,
        trace_context: TraceContext | None = None,
        client_id: str | None = None,
    ) -> KokoResult | ExplainedResult:
        """Evaluate one query against the current corpus.

        String queries go through the plan cache and the generation-stamped
        result caches; pre-parsed queries bypass both.  Execution holds
        per-shard *read* locks only, so any number of queries run
        concurrently with each other and with the off-lock stages of
        in-flight ingests.

        Parameters
        ----------
        query:
            Query text, a parsed :class:`~repro.koko.ast.KokoQuery`, or a
            pre-compiled plan.
        threshold_override:
            Replace the query's ``with threshold`` value for this call.
        keep_all_scores:
            Keep per-variable scores on every tuple instead of only the
            aggregate-relevant ones.
        explain:
            Return an :class:`~repro.observability.tracing.ExplainedResult`
            carrying the full span tree (cache lookups, shard fan-out,
            every pipeline stage per shard, merge) next to the ordinary
            result.  The pipeline **always executes fully** under
            ``explain=True`` — result and partial caches are probed (and
            their outcomes recorded as spans) but never served from, so
            the report reflects real per-stage cost; the tuples are
            identical to a plain query's.
        deadline:
            A ``time.monotonic()`` timestamp after which the query is
            abandoned: checked on entry, before each shard is dispatched,
            and at the start of each shard's scan, raising
            :class:`~repro.errors.DeadlineExceeded` — cooperative
            cancellation, so already-running shard scans finish but no
            new work starts for a caller that has given up.
        trace_context:
            A propagated :class:`~repro.observability.tracing.TraceContext`;
            its ``sampled`` flag replaces the local sampling decision and
            the query's span tree joins the caller's trace.
        client_id:
            The caller's identity, recorded on slow-op entries.
        """
        self._ensure_open()
        self._check_deadline(deadline)
        started = time.perf_counter()
        trace: Span | None = None
        frag: TraceContext | None = None
        sampled = explain or (
            trace_context.sampled
            if trace_context is not None
            else self._tracer.should_sample()
        )
        if sampled:
            self._traces_sampled.inc()
            frag = (
                trace_context.child()
                if trace_context is not None
                else TraceContext.root()
            )
            trace = Span("query", shards=len(self._shards), trace_id=frag.trace_id)
        result_hit: bool | None = None
        plan_hit: bool | None = None
        if isinstance(query, str):
            key = (query, threshold_override, keep_all_scores)
            stamp = tuple(self._generations)
            lookup_started = time.perf_counter()
            cached = self._result_cache.get(key, stamp)
            if trace is not None:
                trace.record(
                    "result_cache",
                    time.perf_counter() - lookup_started,
                    hit=cached is not None,
                )
            if cached is not None and not explain:
                result = cached
                result_hit = True
            else:
                # explain re-executes even on a result-cache hit — the
                # point is the per-stage breakdown, which a cached result
                # cannot provide.  The hit still counts as one (the cache
                # could have served it).
                result_hit = cached is not None
                lookup_started = time.perf_counter()
                plan, plan_hit = self._plan_cache.get_or_compile(query)
                if trace is not None:
                    trace.record(
                        "plan_cache",
                        time.perf_counter() - lookup_started,
                        hit=plan_hit,
                    )
                result = self._execute(
                    plan,
                    threshold_override,
                    keep_all_scores,
                    # explain bypasses the per-shard partial caches too, so
                    # every shard runs every stage and the tree is complete
                    cache_key=None if explain else key,
                    trace=trace,
                    deadline=deadline,
                )
                self._result_cache.put(key, stamp, result)
        else:
            result = self._execute(
                query,
                threshold_override,
                keep_all_scores,
                trace=trace,
                deadline=deadline,
            )
        elapsed = time.perf_counter() - started
        self.stats.record_query(
            elapsed, result_cache_hit=result_hit, plan_cache_hit=plan_hit
        )
        if trace is not None:
            trace.annotate(tuples=len(result))
            trace.finish()
            self._trace_store.record(
                frag,
                trace,
                parent_span_id=(
                    trace_context.span_id if trace_context is not None else None
                ),
                kind="query",
                node=self.name,
            )
        self._observe_slow_query(
            query,
            elapsed,
            result,
            result_hit,
            plan_hit,
            trace,
            trace_id=frag.trace_id if frag is not None else None,
            client_id=client_id,
        )
        if explain:
            return ExplainedResult(result=result, trace=trace)
        return result

    def _execute(
        self,
        query: str | KokoQuery | CompiledQuery,
        threshold_override: float | None,
        keep_all_scores: bool,
        cache_key=None,
        trace: Span | None = None,
        deadline: float | None = None,
    ) -> KokoResult:
        """Run the stage pipeline on every shard and merge the results.

        With a ``cache_key`` (string queries), shards whose generation is
        unchanged since a previous execution of the same query are served
        from the per-shard partial cache — only the shards that actually
        ingested since then re-execute.  With ``trace``, the fan-out gets
        a ``shard_fanout`` span with one ``shardN`` child per shard and a
        ``merge`` span for the deterministic combine.
        """
        if len(self._shards) == 1:
            if trace is None:
                return self._execute_shard(
                    self._shards[0],
                    query,
                    threshold_override,
                    keep_all_scores,
                    deadline=deadline,
                )
            with trace.span("shard_fanout", shards=1) as fanout:
                return self._execute_shard(
                    self._shards[0],
                    query,
                    threshold_override,
                    keep_all_scores,
                    trace=fanout,
                    deadline=deadline,
                )
        pool = self._shard_pool
        if pool is None:
            raise ServiceError("service is closed")
        fanout = (
            trace.child("shard_fanout", shards=len(self._shards))
            if trace is not None
            else None
        )
        partials: list[KokoResult | None] = [None] * len(self._shards)
        pending: list[_Shard] = []
        for shard in self._shards:
            lookup_started = time.perf_counter()
            cached = (
                self._shard_result_caches[shard.shard_id].get(
                    cache_key, self._generations[shard.shard_id]
                )
                if cache_key is not None
                else None
            )
            if cached is not None:
                partials[shard.shard_id] = cached
                self.stats.record_shard_partial(reused=True, shard=shard.shard_id)
                if fanout is not None:
                    fanout.record(
                        f"shard{shard.shard_id}",
                        time.perf_counter() - lookup_started,
                        partial_cache="hit",
                    )
            else:
                pending.append(shard)
        if pending:
            self._check_deadline(deadline)
            # Normalise once so the fan-out doesn't repeat parse + normalise
            # per shard (the plan cache already hands us a CompiledQuery).
            if not isinstance(query, CompiledQuery):
                query = compile_query(query)
            futures = [
                (
                    shard.shard_id,
                    pool.submit(
                        self._execute_shard,
                        shard,
                        query,
                        threshold_override,
                        keep_all_scores,
                        cache_key,
                        fanout,
                        deadline,
                    ),
                )
                for shard in pending
            ]
            for shard_id, future in futures:
                partials[shard_id] = future.result()
        if fanout is not None:
            fanout.finish()
        if trace is None:
            return merge_results([p for p in partials if p is not None])
        with trace.span("merge"):
            return merge_results([p for p in partials if p is not None])

    def _execute_shard(
        self,
        shard: _Shard,
        query: str | KokoQuery | CompiledQuery,
        threshold_override: float | None,
        keep_all_scores: bool,
        cache_key=None,
        trace: Span | None = None,
        deadline: float | None = None,
    ) -> KokoResult:
        """Execute one shard's slice under its read lock; cache the partial.

        ``trace`` is the fan-out span this execution should hang its own
        ``shardN`` child under (safe from pool threads: span child lists
        are lock-guarded).  An expired *deadline* abandons the shard
        before its scan starts (cooperative cancellation: queued shards
        of a timed-out query never run).
        """
        self._check_deadline(deadline)
        started = time.perf_counter()
        span = trace.child(f"shard{shard.shard_id}") if trace is not None else None
        with shard.lock.read_locked():
            # The stamp is read under the read lock, so it is exactly the
            # generation this execution observes on this shard.
            generation = self._generations[shard.shard_id]
            result = shard.engine.execute(
                query,
                threshold_override=threshold_override,
                keep_all_scores=keep_all_scores,
                trace=span,
            )
        if cache_key is not None:
            self._shard_result_caches[shard.shard_id].put(cache_key, generation, result)
            self.stats.record_shard_partial(reused=False, shard=shard.shard_id)
        if span is not None:
            span.annotate(tuples=len(result), generation=generation)
            span.finish()
        elapsed = time.perf_counter() - started
        self.stats.record_shard_query(shard.shard_id, elapsed)
        self._heat.record_query(
            shard.shard_id, elapsed, skip_candidates=result.candidate_sentences
        )
        return result

    @staticmethod
    def _check_deadline(deadline: float | None) -> None:
        """Raise :class:`DeadlineExceeded` when *deadline* has passed."""
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceeded("query deadline expired")

    def _record_shard_cache_eviction(self, shard_id: int, stale: bool) -> None:
        """Forward one shard-partial-cache eviction into the service stats."""
        self.stats.record_shard_cache_eviction(shard_id, stale=stale)

    def query_batch(
        self,
        queries: list[str | KokoQuery | CompiledQuery],
        threshold_override: float | None = None,
        keep_all_scores: bool = False,
        max_workers: int | None = None,
    ) -> list[KokoResult]:
        """Evaluate a batch of queries concurrently, preserving order.

        Each result carries its own :class:`~repro.koko.results.StageTimings`
        exactly as single-query execution would.  The batch pool is separate
        from the per-shard fan-out pool, so batched queries on a sharded
        service still parallelise across shards.

        ``max_workers`` overrides the service-level thread-pool width for
        this batch only.
        """
        self._ensure_open()
        if not queries:
            return []
        workers = max(1, min(max_workers or self.max_workers, len(queries)))
        with ThreadPoolExecutor(max_workers=workers) as executor:
            return list(
                executor.map(
                    lambda q: self.query(
                        q,
                        threshold_override=threshold_override,
                        keep_all_scores=keep_all_scores,
                    ),
                    queries,
                )
            )

    # ------------------------------------------------------------------
    # async front end
    # ------------------------------------------------------------------
    def _run_async(self, fn, /, *args, **kwargs):
        """Run a blocking service call on the front-end pool as an awaitable."""
        self._ensure_open()
        loop = asyncio.get_running_loop()
        return loop.run_in_executor(self._frontend_pool, partial(fn, *args, **kwargs))

    async def aquery(
        self,
        query: str | KokoQuery | CompiledQuery,
        threshold_override: float | None = None,
        keep_all_scores: bool = False,
        explain: bool = False,
    ) -> KokoResult | ExplainedResult:
        """Async :meth:`query`: awaitable, runs on the front-end thread pool.

        The event loop is never blocked — per-shard fan-out, read locking
        and caching behave exactly as in the synchronous call.
        """
        return await self._run_async(
            self.query,
            query,
            threshold_override=threshold_override,
            keep_all_scores=keep_all_scores,
            explain=explain,
        )

    async def aadd_document(
        self, text: str, doc_id: str | None = None, first_sid: int | None = None
    ) -> Document:
        """Async :meth:`add_document`: annotation, group-committed WAL append
        and the shard splice all happen off the event loop; awaiting the
        result gives the same durability guarantee as the blocking call."""
        return await self._run_async(
            self.add_document, text, doc_id=doc_id, first_sid=first_sid
        )

    async def aremove_document(self, doc_id: str) -> Document:
        """Async :meth:`remove_document` on the front-end thread pool."""
        return await self._run_async(self.remove_document, doc_id)

    async def aquery_batch(
        self,
        queries: list[str | KokoQuery | CompiledQuery],
        threshold_override: float | None = None,
        keep_all_scores: bool = False,
    ) -> list[KokoResult]:
        """Async batch evaluation: queries fan out as individual awaitables
        on the front-end pool (bounded by ``max_workers``) and results come
        back in input order."""
        self._ensure_open()
        return list(
            await asyncio.gather(
                *(
                    self.aquery(
                        query,
                        threshold_override=threshold_override,
                        keep_all_scores=keep_all_scores,
                    )
                    for query in queries
                )
            )
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the service down cleanly (idempotent).

        A durable service stops the checkpoint thread, drains in-flight
        staged ingests, flushes a final checkpoint when anything was
        logged since the last one, and closes the WAL — so a
        context-managed service always leaves a consistent,
        immediately-loadable on-disk state.  A memory-only service just
        drains its pools.  Calls issued after ``close`` raise
        :class:`ServiceError`.
        """
        if self._closed:
            return
        self._closed = True
        if self._checkpoint_scheduler is not None:
            self._checkpoint_scheduler.stop()
            self._checkpoint_scheduler = None
        # Drain staged ingests that claimed before _closed was set: they
        # must reach the WAL and splice before the WAL (and pools) go
        # away.  New claims already raise, so the count only falls.
        with self._meta_cond:
            while self._inflight_ingests:
                self._meta_cond.wait()
        if self._wal is not None:
            try:
                if self._ops_since_checkpoint:
                    self.checkpoint()
            finally:
                self._wal.close()
                self._wal = None
        if self._annotation_pool is not None:
            self._annotation_pool.shutdown(wait=True)
            self._annotation_pool = None
        self._frontend_pool.shutdown(wait=True)
        if self._shard_pool is not None:
            self._shard_pool.shutdown(wait=True)
            self._shard_pool = None
        self._slow_log.close()

    def __enter__(self) -> "KokoService":
        """Context-manager entry: the service itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close` (flushes a final checkpoint)."""
        self.close()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run (telemetry liveness probe)."""
        return self._closed

    def shard_heat_report(self) -> ShardHeatReport:
        """One consistent, scored cut of every shard's heat signals.

        The :class:`~repro.observability.heat.ShardHeatReport` blends
        queries routed, skip-plan candidates scanned, splice bytes, and
        EWMA stage latency into a per-shard ``heat_score``; it backs the
        telemetry ``/shards`` endpoint and is the input signal for shard
        split/rebalance decisions.
        """
        return self._heat.report()

    @property
    def metrics(self) -> MetricsRegistry:
        """The service's unified metrics registry.

        One registry holds every layer's metrics — query/cache/ingest
        counters, WAL and checkpoint durability metrics, per-shard
        families, and (when replication is attached) shipper and replica
        lag gauges.  ``service.metrics.render_text()`` is the Prometheus
        exposition; ``render_json()`` the structured dump.
        """
        return self.stats.registry

    def recent_slow_ops(
        self, limit: int | None = None, trace_id: str | None = None
    ) -> list[dict]:
        """Newest-first structured slow-op entries from the ring buffer.

        Each entry is the dict that was (optionally) written to the slow-op
        log file: kind, duration, per-stage millisecond breakdown, cache
        outcomes / WAL frame size, ``trace_id``/``client_id`` when the op
        came in traced or over RPC, and the span tree when traced.
        *trace_id* filters to entries of that trace (the whole ring is
        scanned before *limit* applies).
        """
        if trace_id is None:
            return self._slow_log.recent(limit)
        matching = [
            entry
            for entry in self._slow_log.recent(None)
            if entry.get("trace_id") == trace_id
        ]
        return matching[:limit] if limit is not None else matching

    @property
    def trace_store(self) -> TraceStore:
        """The per-node ring of completed sampled traces (``/traces``)."""
        return self._trace_store

    @property
    def wal_traces_logged(self) -> int:
        """How many WAL records carried a trace context (advisory).

        The log shipper checks this before paying per-record payload
        decodes on the ship path: zero means no shipped record can carry
        a context, so shipping stays decode-free.
        """
        return self._wal_traces_logged

    def _observe_slow_query(
        self,
        query,
        elapsed: float,
        result: KokoResult,
        result_hit: bool | None,
        plan_hit: bool | None,
        trace: Span | None,
        trace_id: str | None = None,
        client_id: str | None = None,
    ) -> None:
        """Record one structured slow-op entry if *elapsed* crosses the bar."""
        threshold = self._slow_query_ms
        if threshold is None:
            return
        duration_ms = elapsed * 1000.0
        if duration_ms < threshold:
            return
        timings = result.timings
        entry = {
            "kind": "query",
            "ts_unix": round(time.time(), 3),
            "duration_ms": round(duration_ms, 3),
            "query_sha1": (
                hashlib.sha1(query.encode()).hexdigest()[:12]
                if isinstance(query, str)
                else None
            ),
            "trace_id": trace_id,
            "client_id": client_id,
            "shards": len(self._shards),
            "tuples": len(result),
            "candidate_sentences": result.candidate_sentences,
            "cache": {
                "result_cache_hit": result_hit,
                "plan_cache_hit": plan_hit,
            },
            "stages_ms": {
                "normalize": round(timings.normalize * 1000.0, 3),
                "dpli": round(timings.dpli * 1000.0, 3),
                "load": round(timings.load_articles * 1000.0, 3),
                "gsp": round(timings.gsp * 1000.0, 3),
                "extract": round(timings.extract * 1000.0, 3),
                "aggregate": round(timings.satisfying * 1000.0, 3),
            },
        }
        if trace is not None:
            entry["trace"] = trace.to_dict()
        self._slow_ops.labels("query").inc()
        self._slow_log.record(entry)

    def _observe_slow_ingest(
        self,
        kind: str,
        elapsed: float,
        *,
        doc_id: str,
        shard: int,
        stages: dict[str, float],
        frame_bytes: int,
        sentences: int,
        tokens: int,
        trace: Span | None,
        trace_id: str | None = None,
        client_id: str | None = None,
    ) -> None:
        """Record one structured slow ingest/remove entry if over threshold."""
        threshold = self._slow_ingest_ms
        if threshold is None:
            return
        duration_ms = elapsed * 1000.0
        if duration_ms < threshold:
            return
        entry = {
            "kind": kind,
            "ts_unix": round(time.time(), 3),
            "duration_ms": round(duration_ms, 3),
            "trace_id": trace_id,
            "client_id": client_id,
            "doc_id": doc_id,
            "shard": shard,
            "sentences": sentences,
            "tokens": tokens,
            "wal": {
                "frame_bytes": frame_bytes,
                "mean_batch": round(self.stats.wal_mean_batch, 2),
            },
            "stages_ms": {
                name: round(seconds * 1000.0, 3) for name, seconds in stages.items()
            },
        }
        if trace is not None:
            entry["trace"] = trace.to_dict()
        self._slow_ops.labels(kind).inc()
        self._slow_log.record(entry)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Number of hash partitions this service routes documents across."""
        return len(self._shards)

    @property
    def generation(self) -> int:
        """Total corpus generation: the sum of every shard's stamp."""
        return sum(self._generations)

    @property
    def generations(self) -> tuple[int, ...]:
        """Per-shard generation stamps (each ingest bumps exactly one)."""
        return tuple(self._generations)

    @property
    def indexes(self) -> KokoIndexSet | ShardedIndexSet:
        """The live index set: a plain :class:`KokoIndexSet` when unsharded,
        the :class:`ShardedIndexSet` otherwise."""
        if len(self._shards) == 1:
            return self._shards[0].indexes
        return self._index_set

    @property
    def engine(self) -> KokoEngine:
        """The single shard's engine (unsharded services only)."""
        if len(self._shards) != 1:
            raise ServiceError(
                "a sharded service has no single engine; use .engines"
            )
        return self._shards[0].engine

    @property
    def engines(self) -> list[KokoEngine]:
        """Every shard's engine, in shard order."""
        return [shard.engine for shard in self._shards]

    @property
    def corpus(self) -> Corpus:
        """The single shard's corpus (unsharded services only)."""
        if len(self._shards) != 1:
            raise ServiceError(
                "a sharded service has no single corpus; use .corpora"
            )
        return self._shards[0].corpus

    @property
    def corpora(self) -> list[Corpus]:
        """Every shard's corpus slice, in shard order."""
        return [shard.corpus for shard in self._shards]

    @property
    def inflight_ingest_bytes(self) -> int:
        """Text bytes of ingests currently claimed but not yet committed."""
        with self._meta_lock:
            return self._inflight_ingest_bytes

    def next_sid(self) -> int:
        """The first sentence id a newly annotated document should use.

        With staged ingests in flight the counter includes their reserved
        ranges, so a value read here stays safe to pass as ``first_sid``
        only while no other writer claims ids in between.
        """
        return self._next_sid

    def document_ids(self) -> list[str]:
        """Ids of every fully ingested document (mid-ingest ids excluded)."""
        with self._meta_lock:
            return list(self._doc_shard)

    def shard_of(self, doc_id: str) -> int:
        """The shard index *doc_id* is (or would be) routed to."""
        return self._index_set.shard_id(doc_id)

    def statistics(self) -> IndexStatistics:
        """Current :class:`IndexStatistics` merged across every shard."""
        return IndexStatistics.merged(self.statistics_by_shard())

    def statistics_by_shard(self) -> list[IndexStatistics]:
        """Per-shard :class:`IndexStatistics` (the balance/skew view)."""
        stats = []
        for shard in self._shards:
            with shard.lock.read_locked():
                stats.append(shard.indexes.statistics())
        return stats

    def __len__(self) -> int:
        """Number of fully ingested documents."""
        return len(self._doc_shard)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"KokoService(documents={len(self._doc_shard)}, "
            f"shards={len(self._shards)}, generations={self._generations}, "
            f"durable={self._layout is not None})"
        )


class ShardedKokoService(KokoService):
    """A :class:`KokoService` that defaults to four hash partitions."""

    def __init__(self, shards: int = 4, **kwargs) -> None:
        """Same parameters as :class:`KokoService`, with ``shards=4``."""
        super().__init__(shards=shards, **kwargs)
