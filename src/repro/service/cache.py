"""Plan and result caches for :class:`~repro.service.KokoService`.

Two read-side caches, both keyed by query text:

* :class:`PlanCache` — memoises parse + normalise (the engine's Normalize
  stage) into :class:`~repro.koko.engine.CompiledQuery` objects.  Plans
  depend only on the query string, so this cache survives ingestion.
* :class:`ResultCache` — a generation-stamped LRU over full query results.
  Every ingest bumps the service's corpus generation; an entry stamped
  with an older generation is stale and treated as a miss (and evicted),
  so results never outlive the corpus snapshot they were computed from.

Both caches are guarded by their own mutex: many query threads hit them
concurrently under the service's *read* lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Generic, Hashable, TypeVar

from ..koko.engine import CompiledQuery, compile_query

__all__ = ["PlanCache", "ResultCache"]

V = TypeVar("V")


class _LruDict(Generic[V]):
    """A tiny thread-safe LRU mapping (capacity-bounded OrderedDict).

    ``on_evict`` (when given) observes every capacity eviction — called
    outside the mutex so observers may take their own locks freely.
    """

    def __init__(
        self, capacity: int, on_evict: Callable[[Hashable], None] | None = None
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, V] = OrderedDict()
        self._on_evict = on_evict

    def get(self, key: Hashable) -> V | None:
        """The cached value for *key* (refreshing recency), else None."""
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key: Hashable, value: V) -> None:
        """Insert/refresh *key*, evicting least-recently-used overflow."""
        evicted: list[Hashable] = []
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                evicted.append(self._entries.popitem(last=False)[0])
        if self._on_evict is not None:
            for evicted_key in evicted:
                self._on_evict(evicted_key)

    def evict(self, key: Hashable) -> bool:
        """Drop *key* if present; True when something was actually removed
        (so racing evictors can tell who won and count the eviction once)."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class PlanCache:
    """LRU cache of compiled query plans, keyed by query string."""

    def __init__(self, capacity: int = 256) -> None:
        self._plans: _LruDict[CompiledQuery] = _LruDict(capacity)

    def get_or_compile(self, query_text: str) -> tuple[CompiledQuery, bool]:
        """Return ``(plan, was_hit)`` for *query_text*, compiling on miss.

        A parse error propagates to the caller and caches nothing.
        """
        plan = self._plans.get(query_text)
        if plan is not None:
            return plan, True
        plan = compile_query(query_text)
        self._plans.put(query_text, plan)
        return plan, False

    def clear(self) -> None:
        """Drop every cached plan."""
        self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)


class ResultCache(Generic[V]):
    """Generation-stamped LRU: entries from an older corpus generation miss.

    Staleness is checked lazily at lookup time, so ingestion never has to
    walk the cache — bumping a generation invalidates its entries at once.
    The stamp may be a plain int (one global generation) or a tuple of
    per-shard generations (the service stamps full results with the vector
    and per-shard partials with that shard's own counter).

    Evictions are observable through the optional ``on_evict(stale:
    bool)`` callback — ``True`` for a generation-mismatch eviction
    spotted at lookup, ``False`` for a capacity (lru) eviction — which
    the service wires into its per-shard
    :class:`~repro.service.stats.ServiceStats` counters, the raw inputs
    of cache-sizing decisions.  (Hits and misses are recorded by the
    caller, which knows which shard and query the lookup was for.)

    **Cost-aware admission**: with ``max_entry_bytes`` and an
    ``entry_bytes`` estimator set, :meth:`put` refuses values whose
    estimated size exceeds the bound — one giant result would otherwise
    push out many small, frequently reused entries while being unlikely
    to be re-asked before the next ingest staled it anyway.  Each refusal
    fires ``on_admission_skip`` (the service counts them per shard).
    """

    def __init__(
        self,
        capacity: int = 256,
        on_evict: Callable[[bool], None] | None = None,
        max_entry_bytes: int | None = None,
        entry_bytes: Callable[[V], int] | None = None,
        on_admission_skip: Callable[[], None] | None = None,
    ) -> None:
        if max_entry_bytes is not None and max_entry_bytes <= 0:
            raise ValueError(
                f"max_entry_bytes must be positive or None, got {max_entry_bytes}"
            )
        if max_entry_bytes is not None and entry_bytes is None:
            raise ValueError("max_entry_bytes requires an entry_bytes estimator")
        self._entries: _LruDict[tuple[Hashable, V]] = _LruDict(
            capacity, on_evict=self._forward_lru_eviction
        )
        self._on_evict = on_evict
        self._max_entry_bytes = max_entry_bytes
        self._entry_bytes = entry_bytes
        self._on_admission_skip = on_admission_skip

    def _forward_lru_eviction(self, _key: Hashable) -> None:
        if self._on_evict is not None:
            self._on_evict(False)

    def get(self, key: Hashable, generation: Hashable) -> V | None:
        """The value cached under *key* at exactly *generation*, else None.

        An entry stamped with a different generation is stale: it is
        evicted on sight and reported as a miss.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        stamped_generation, value = entry
        if stamped_generation != generation:
            if self._entries.evict(key) and self._on_evict is not None:
                self._on_evict(True)
            return None
        return value

    def put(self, key: Hashable, generation: Hashable, value: V) -> None:
        """Cache *value* under *key*, stamped with *generation*.

        Oversize values (see ``max_entry_bytes``) are not admitted; the
        caller still gets its computed value, it just isn't cached.
        """
        if (
            self._max_entry_bytes is not None
            and self._entry_bytes(value) > self._max_entry_bytes
        ):
            if self._on_admission_skip is not None:
                self._on_admission_skip()
            return
        self._entries.put(key, (generation, value))

    def get_or_compute(
        self, key: Hashable, generation: Hashable, compute: Callable[[], V]
    ) -> tuple[V, bool]:
        """Return ``(value, was_hit)``, computing and caching on miss."""
        cached = self.get(key, generation)
        if cached is not None:
            return cached, True
        value = compute()
        self.put(key, generation, value)
        return value, False

    def clear(self) -> None:
        """Drop every cached result."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
