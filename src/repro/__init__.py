"""repro — a from-scratch reproduction of KOKO (Scalable Semantic Querying of Text, VLDB 2018).

The top-level package re-exports the most commonly used entry points:

* :class:`~repro.nlp.Pipeline` — annotate raw text into parsed documents,
* :class:`~repro.koko.KokoEngine` — evaluate KOKO queries over a corpus,
* :func:`~repro.koko.parse_query` — parse a KOKO query string,
* :class:`~repro.indexing.KokoIndexSet` — the multi-index by itself,
* :class:`~repro.service.KokoService` — the concurrent query-serving layer
  with incremental ingestion, plan/result caching, service metrics and —
  via ``KokoService.open(path)`` — snapshot + write-ahead-log durability
  (:class:`~repro.persistence.CheckpointPolicy` tunes checkpointing),
* :class:`~repro.observability.MetricsRegistry` /
  :class:`~repro.observability.Span` — the unified metrics registry and
  the span tree behind ``service.query(..., explain=True)``.

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduction of every table and figure of the paper.
"""

from .koko import CompiledQuery, KokoEngine, KokoQuery, KokoResult, compile_query, parse_query
from .nlp import Corpus, Document, Pipeline, Sentence, Token
from .indexing import KokoIndexSet, ShardedIndexSet
from .observability import ExplainedResult, MetricsRegistry, Span
from .persistence import CheckpointPolicy
from .service import KokoService, ServiceStats, ShardedKokoService

__version__ = "1.4.0"

__all__ = [
    "CheckpointPolicy",
    "CompiledQuery",
    "Corpus",
    "Document",
    "ExplainedResult",
    "KokoEngine",
    "KokoIndexSet",
    "KokoQuery",
    "KokoResult",
    "KokoService",
    "MetricsRegistry",
    "Pipeline",
    "Sentence",
    "ServiceStats",
    "ShardedIndexSet",
    "ShardedKokoService",
    "Span",
    "Token",
    "compile_query",
    "parse_query",
    "__version__",
]
