"""HTTP telemetry plane: ``/metrics``, health probes, and the cluster view.

Two pieces, both dependency-free (asyncio + stdlib ``http.client``):

* :class:`TelemetryServer` — a tiny asyncio HTTP/1.1 endpoint that runs
  in a daemon thread and attaches to any *node* (a ``KokoService``
  primary, a ``ReplicaService`` follower, or a ``ReplicaSet`` router —
  the node is duck-typed, so this module imports nothing from the
  service or replication layers).  Endpoints:

  ===================  ====================================================
  ``GET /metrics``     Prometheus text exposition of the node's registry
  ``GET /metrics.json``  the same registry as one JSON document
  ``GET /healthz``     liveness: 200 while the node object is open
  ``GET /readyz``      readiness: 200 only when every check passes (WAL
                       durability advancing, checkpoint not wedged,
                       replica connected and under the lag bound, scraped
                       cluster peers ready)
  ``GET /stats``       the ``ServiceStats`` snapshot + node identity,
                       p50/p95/p99 latency estimates, replication /
                       routing sections per node kind
  ``GET /slowlog``     newest-first slow-op entries (``?limit=N``,
                       ``?trace_id=...`` to filter to one trace)
  ``GET /shards``      the per-shard :class:`ShardHeatReport`
  ``GET /traces``      newest-first sampled-trace summaries from the
                       node's :class:`~repro.observability.tracestore.
                       TraceStore` (``?limit=N``)
  ``GET /traces/<id>`` that trace's node-local fragments
  ``GET /cluster``     the merged cluster view (requires an attached
                       :class:`ClusterTelemetry`; 404 otherwise)
  ``GET /cluster/traces/<id>``  the cross-node assembled trace: the
                       primary's own fragments plus every peer's
                       ``/traces/<id>``, clock-offset aligned and
                       stitched into one tree
  ===================  ====================================================

  Every response closes the connection (``Connection: close``) — scrape
  clients open one short-lived connection per probe, which keeps the
  server a few dozen lines and good for telemetry-rate traffic (1–10 Hz),
  not a query-serving front end.

* :class:`ClusterTelemetry` — a scraper that polls each registered
  node's ``/stats`` + ``/readyz`` over TCP, merges the per-node health,
  lag and applied positions into one cluster view (rendered at
  ``/cluster`` on the node it is attached to, normally the primary), and
  answers :meth:`ClusterTelemetry.replica_health` so a ``ReplicaSet``
  router can fold *scraped* health into its routing decisions
  (``router.attach_health_source(cluster)``).  When the primary's
  ``LogShipper`` is provided, its authoritative per-session byte lag
  joins the readiness verdict — a follower that stops acking flips the
  primary's ``/readyz`` even if the follower's own endpoint still
  answers with stale self-reported lag.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

from .metrics import MetricsRegistry, histogram_quantiles
from .tracestore import stitch_fragments

__all__ = ["ClusterTelemetry", "TelemetryServer", "http_get_json", "scrape"]

_TEXT = "text/plain; charset=utf-8"
_JSON = "application/json; charset=utf-8"
_PROM = "text/plain; version=0.0.4; charset=utf-8"

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def scrape(host: str, port: int, path: str, timeout: float = 5.0) -> tuple[int, bytes]:
    """``GET http://host:port/path`` -> ``(status, body)``, stdlib-only.

    One short-lived connection per call, matching the server's
    ``Connection: close`` behaviour.  Network errors propagate.
    """
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def http_get_json(
    host: str, port: int, path: str, timeout: float = 5.0
) -> tuple[int, object]:
    """:func:`scrape` a JSON endpoint -> ``(status, parsed body)``.

    ``None`` for an empty or non-JSON body; network errors propagate.
    """
    status, body = scrape(host, port, path, timeout=timeout)
    if not body:
        return status, None
    try:
        return status, json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return status, None


def _node_kind(node) -> str:
    """``service`` / ``replica`` / ``router``, duck-typed."""
    if hasattr(node, "replication_stats") and hasattr(node, "service"):
        return "replica"
    if hasattr(node, "primary") and hasattr(node, "replicas"):
        return "router"
    return "service"


def _underlying_service(node):
    """The ``KokoService`` whose stats/slowlog/heat back *node*."""
    kind = _node_kind(node)
    if kind == "replica":
        return node.service
    if kind == "router":
        return node.primary
    return node


def _query_int(query: str, key: str, default: int) -> int:
    """The integer value of *key* in a raw query string, else *default*."""
    for part in query.split("&"):
        name, _, value = part.partition("=")
        if name == key:
            try:
                return int(value)
            except ValueError:
                return default
    return default


def _query_str(query: str, key: str) -> str | None:
    """The raw string value of *key* in a query string, else ``None``."""
    for part in query.split("&"):
        name, _, value = part.partition("=")
        if name == key and value:
            return value
    return None


def _dumps(payload: object) -> bytes:
    """JSON-encode an endpoint payload (non-JSON leaves become strings)."""
    return (json.dumps(payload, indent=2, default=str) + "\n").encode("utf-8")


class TelemetryServer:
    """One node's HTTP telemetry endpoint (see the module docstring).

    Parameters
    ----------
    node:
        The ``KokoService``, ``ReplicaService`` or ``ReplicaSet`` to
        expose.  Only its public observability surface is used
        (``metrics``, ``stats``, ``recent_slow_ops``,
        ``shard_heat_report``, ``replication_stats`` / ``routing_stats``).
    host / port:
        Bind address; port 0 (the default) picks a free port —
        :meth:`start` returns the bound ``(host, port)``.
    name:
        Node name in ``/stats`` (defaults to ``node.name``).
    max_lag_bytes:
        Readiness bound on replica byte lag; ``None`` skips the check.
    checkpoint_wedge_seconds:
        ``/readyz`` fails once a single checkpoint has been in progress
        longer than this (a wedged checkpointer pins the WAL forever).
    wal_stall_seconds:
        ``/readyz`` fails when appended records outrun synced records
        and the synced count has not advanced for this long (fsync path
        wedged: writes are no longer becoming durable).
    cluster:
        An optional :class:`ClusterTelemetry`; serving it at
        ``/cluster`` and folding its verdict into ``/readyz`` makes this
        node (normally the primary) the cluster's health authority.
    rpc_server:
        An optional :class:`~repro.rpc.server.RpcServer` co-located on
        this node; ``/readyz`` then also requires ``rpc_listening`` —
        a node whose RPC front door died should fall out of rotation.
    """

    def __init__(
        self,
        node,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        name: str | None = None,
        max_lag_bytes: int | None = None,
        checkpoint_wedge_seconds: float = 300.0,
        wal_stall_seconds: float = 60.0,
        cluster: "ClusterTelemetry | None" = None,
        rpc_server=None,
    ) -> None:
        self.node = node
        self.cluster = cluster
        self.rpc_server = rpc_server
        self.name = name if name is not None else getattr(node, "name", "node")
        self.max_lag_bytes = max_lag_bytes
        self._host = host
        self._port = port
        self._kind = _node_kind(node)
        self._checkpoint_wedge_seconds = checkpoint_wedge_seconds
        self._wal_stall_seconds = wal_stall_seconds
        self._probe_lock = threading.Lock()
        self._checkpoint_first_seen: float | None = None
        self._wal_synced_seen: tuple[int, float] = (0, time.monotonic())
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self.address: tuple[str, int] | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind and serve in a daemon thread; returns ``(host, port)``."""
        if self._thread is not None:
            return self.address
        ready = threading.Event()
        failure: list[BaseException] = []
        loop = asyncio.new_event_loop()
        self._loop = loop

        def run() -> None:
            asyncio.set_event_loop(loop)
            try:
                server = loop.run_until_complete(
                    asyncio.start_server(self._handle, self._host, self._port)
                )
            except BaseException as exc:  # bind failure: surface to start()
                failure.append(exc)
                ready.set()
                return
            self.address = server.sockets[0].getsockname()[:2]
            ready.set()
            try:
                loop.run_forever()
            finally:
                server.close()
                loop.run_until_complete(server.wait_closed())
                loop.close()

        self._thread = threading.Thread(
            target=run, name=f"telemetry-{self.name}", daemon=True
        )
        self._thread.start()
        ready.wait(timeout=10.0)
        if failure:
            self._thread.join(timeout=1.0)
            self._thread = None
            self._loop = None
            raise failure[0]
        return self.address

    def close(self) -> None:
        """Stop serving (idempotent); in-flight requests are abandoned."""
        loop, thread = self._loop, self._thread
        self._loop = self._thread = None
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(loop.stop)
        except RuntimeError:  # pragma: no cover - loop already gone
            pass
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "TelemetryServer":
        """Context-manager entry: :meth:`start`, returning the server."""
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        status, content_type, body = 400, _TEXT, b"bad request\n"
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            parts = request_line.decode("latin-1").split()
            while True:  # drain headers; every response closes the connection
                line = await asyncio.wait_for(reader.readline(), timeout=10.0)
                if line in (b"", b"\r\n", b"\n"):
                    break
            if len(parts) >= 2:
                status, content_type, body = self._respond(parts[0].upper(), parts[1])
        except Exception:
            status, content_type, body = 500, _TEXT, b"internal error\n"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except Exception:  # pragma: no cover - peer went away mid-response
            pass

    def _respond(self, method: str, target: str) -> tuple[int, str, bytes]:
        """Route one request to its endpoint; errors become 500 bodies."""
        path, _, query = target.partition("?")
        if method != "GET":
            return 405, _TEXT, b"only GET is supported\n"
        try:
            if path == "/metrics":
                return 200, _PROM, self._registry().render_text().encode("utf-8")
            if path == "/metrics.json":
                body = self._registry().render_json(indent=2) + "\n"
                return 200, _JSON, body.encode("utf-8")
            if path == "/healthz":
                return self._probe(*self.liveness())
            if path == "/readyz":
                return self._probe(*self.readiness())
            if path == "/stats":
                return 200, _JSON, _dumps(self.stats_document())
            if path == "/slowlog":
                limit = max(0, _query_int(query, "limit", 50))
                trace_id = _query_str(query, "trace_id")
                service = _underlying_service(self.node)
                if trace_id is not None:
                    entries = service.recent_slow_ops(limit, trace_id=trace_id)
                else:
                    entries = service.recent_slow_ops(limit)
                return 200, _JSON, _dumps(entries)
            if path == "/shards":
                return 200, _JSON, _dumps(self.heat_document())
            if path == "/traces":
                store = self._trace_store()
                if store is None:
                    return 404, _TEXT, b"no trace store on this node\n"
                limit = max(1, _query_int(query, "limit", 50))
                payload = {
                    "node": self.name,
                    "stored": len(store),
                    "recorded_total": store.recorded_total,
                    "traces": store.recent(limit),
                }
                return 200, _JSON, _dumps(payload)
            if path.startswith("/traces/"):
                store = self._trace_store()
                if store is None:
                    return 404, _TEXT, b"no trace store on this node\n"
                trace_id = path[len("/traces/") :]
                fragments = store.get(trace_id)
                if fragments is None:
                    return 404, _TEXT, f"unknown trace {trace_id}\n".encode("utf-8")
                payload = {
                    "node": self.name,
                    "trace_id": trace_id,
                    "fragments": fragments,
                }
                return 200, _JSON, _dumps(payload)
            if path.startswith("/cluster/traces/"):
                if self.cluster is None:
                    return 404, _TEXT, b"no cluster telemetry attached to this node\n"
                trace_id = path[len("/cluster/traces/") :]
                assembled = self.cluster.assemble_trace(
                    trace_id, skip_endpoint=self.address
                )
                if not assembled["fragments"]:
                    return 404, _TEXT, f"unknown trace {trace_id}\n".encode("utf-8")
                return 200, _JSON, _dumps(assembled)
            if path == "/cluster":
                if self.cluster is None:
                    return 404, _TEXT, b"no cluster telemetry attached to this node\n"
                return 200, _JSON, _dumps(self.cluster.cluster_view())
            return 404, _TEXT, f"unknown path {path}\n".encode("utf-8")
        except Exception as exc:
            return 500, _TEXT, f"error serving {path}: {exc!r}\n".encode("utf-8")

    def _probe(self, ok: bool, checks: dict, detail: dict) -> tuple[int, str, bytes]:
        """Render one liveness/readiness verdict as a probe response."""
        payload = {
            "status": "ok" if ok else "unavailable",
            "checks": checks,
            "detail": detail,
        }
        return (200 if ok else 503), _JSON, _dumps(payload)

    def _registry(self) -> MetricsRegistry:
        """The node's metrics registry (every node kind exposes one)."""
        return self.node.metrics

    def _trace_store(self):
        """The node's trace store, or ``None`` for nodes without one."""
        return getattr(_underlying_service(self.node), "trace_store", None)

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def liveness(self) -> tuple[bool, dict, dict]:
        """``/healthz``: the node object is open and can serve at all."""
        closed = bool(getattr(self.node, "closed", False)) or bool(
            getattr(_underlying_service(self.node), "closed", False)
        )
        checks = {"open": not closed}
        return all(checks.values()), checks, {"kind": self._kind}

    def readiness(self) -> tuple[bool, dict, dict]:
        """``/readyz``: every check a load balancer should gate on.

        Returns ``(ok, checks, detail)``: *checks* maps check name to
        pass/fail (the verdict is their conjunction), *detail* carries
        the numbers behind them (lag bytes, stall ages, cluster
        problems).
        """
        service = _underlying_service(self.node)
        stats = service.stats
        checks: dict[str, bool] = {}
        detail: dict[str, object] = {"kind": self._kind}
        checks["open"] = not (
            bool(getattr(self.node, "closed", False))
            or bool(getattr(service, "closed", False))
        )
        checks["checkpoint_not_wedged"] = self._checkpoint_not_wedged(stats)
        checks["wal_advancing"] = self._wal_advancing(stats, detail)
        if self.rpc_server is not None:
            checks["rpc_listening"] = bool(self.rpc_server.listening)
        if self._kind == "replica":
            checks["connected"] = bool(
                self.node.connected and not self.node.restart_requested
            )
            lag = self.node.lag_bytes
            detail["lag_bytes"] = lag
            if self.max_lag_bytes is not None:
                # lag None = unknown (pre-heartbeat grace); the connected
                # check covers the disconnected case
                checks["lag_under_bound"] = lag is None or lag <= self.max_lag_bytes
                detail["max_lag_bytes"] = self.max_lag_bytes
        if self.cluster is not None:
            cluster_ok, cluster_detail = self.cluster.ready()
            checks["cluster_ready"] = cluster_ok
            detail["cluster"] = cluster_detail
        elif self._kind == "router":
            unready = []
            for replica in self.node.replicas:
                name = getattr(replica, "name", repr(replica))
                lag = replica.lag_bytes
                if not replica.connected or replica.restart_requested:
                    unready.append(f"{name}: disconnected")
                elif (
                    self.max_lag_bytes is not None
                    and lag is not None
                    and lag > self.max_lag_bytes
                ):
                    unready.append(f"{name}: lag {lag} > {self.max_lag_bytes}")
            checks["replicas_ready"] = not unready
            detail["unready_replicas"] = unready
        return all(checks.values()), checks, detail

    def _checkpoint_not_wedged(self, stats) -> bool:
        """False once one checkpoint has run past the wedge bound."""
        with self._probe_lock:
            now = time.monotonic()
            if stats.checkpoint_in_progress:
                if self._checkpoint_first_seen is None:
                    self._checkpoint_first_seen = now
                return (
                    now - self._checkpoint_first_seen
                    <= self._checkpoint_wedge_seconds
                )
            self._checkpoint_first_seen = None
            return True

    def _wal_advancing(self, stats, detail: dict) -> bool:
        """False when an append/sync backlog exists and syncs stopped."""
        with self._probe_lock:
            now = time.monotonic()
            synced = stats.wal_records_synced
            last_synced, changed_at = self._wal_synced_seen
            if synced != last_synced:
                self._wal_synced_seen = (synced, now)
                changed_at = now
            backlog = stats.wal_records_appended - synced
            detail["wal_unsynced_records"] = backlog
            return backlog <= 0 or (now - changed_at) <= self._wal_stall_seconds

    # ------------------------------------------------------------------
    # documents
    # ------------------------------------------------------------------
    def stats_document(self) -> dict:
        """The ``/stats`` payload: snapshot + identity + per-kind extras."""
        service = _underlying_service(self.node)
        document = service.stats.snapshot()
        document["node"] = {
            "name": self.name,
            "kind": self._kind,
            "documents": len(service),
        }
        latency = service.metrics.get("koko_query_latency_seconds")
        if latency is not None:
            document["query_latency_percentiles"] = {
                f"p{percentile:g}": estimate
                for percentile, estimate in histogram_quantiles(latency).items()
            }
        if self._kind == "replica":
            document["replication"] = self.node.replication_stats()
        else:
            position = service.wal_position()
            document["wal_position"] = str(position) if position is not None else None
        if self._kind == "router":
            document["routing"] = self.node.routing_stats()
        return document

    def heat_document(self) -> dict:
        """The ``/shards`` payload: the node's shard heat report."""
        service = _underlying_service(self.node)
        report = getattr(service, "shard_heat_report", None)
        if report is None:  # a node without heat accounting
            return {"hottest_shard": None, "weights": {}, "shards": []}
        return report().to_dict()


class ClusterTelemetry:
    """Scrapes every node's telemetry endpoint into one cluster view.

    Register each node's ``(host, port)`` with :meth:`add_peer`, then
    either :meth:`start` the background poller (``poll_interval``
    seconds between sweeps) or call :meth:`scrape_once` on demand.
    The merged view (:meth:`cluster_view`) is what the primary's
    :class:`TelemetryServer` renders at ``/cluster``; the per-name
    views (:meth:`replica_health`) are what a ``ReplicaSet`` consumes
    via ``attach_health_source``.

    Parameters
    ----------
    primary:
        The primary service (for its WAL position and document count in
        the view); optional so a detached observer can also aggregate.
    shipper:
        The primary's ``LogShipper``; when given, each live session's
        primary-computed byte lag and stall verdict join the readiness
        decision — authoritative even when a wedged follower's endpoint
        keeps serving stale self-reported lag.
    max_lag_bytes:
        Byte-lag bound applied to both scraped and shipper-side lag.
    poll_interval / scrape_timeout:
        Background sweep period and the per-request HTTP timeout.
    """

    def __init__(
        self,
        primary=None,
        *,
        shipper=None,
        max_lag_bytes: int | None = None,
        poll_interval: float = 1.0,
        scrape_timeout: float = 2.0,
    ) -> None:
        self.primary = primary
        self.shipper = shipper
        self.max_lag_bytes = max_lag_bytes
        self.poll_interval = poll_interval
        self.scrape_timeout = scrape_timeout
        self._lock = threading.Lock()
        self._peers: dict[str, tuple[str, int]] = {}
        self._views: dict[str, dict] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_peer(self, name: str, host: str, port: int) -> None:
        """Register node *name*'s telemetry endpoint for scraping."""
        with self._lock:
            self._peers[name] = (str(host), int(port))

    def remove_peer(self, name: str) -> None:
        """Forget node *name* (idempotent); its last view is dropped too."""
        with self._lock:
            self._peers.pop(name, None)
            self._views.pop(name, None)

    @property
    def peers(self) -> dict[str, tuple[str, int]]:
        """The registered ``{name: (host, port)}`` endpoints."""
        with self._lock:
            return dict(self._peers)

    # ------------------------------------------------------------------
    # scraping
    # ------------------------------------------------------------------
    def scrape_once(self) -> dict:
        """Scrape every peer now; returns the merged cluster view."""
        with self._lock:
            peers = dict(self._peers)
        for name, (host, port) in peers.items():
            view = self._scrape_peer(name, host, port)
            with self._lock:
                if name in self._peers:  # lost a remove_peer race: drop it
                    self._views[name] = view
        return self.cluster_view()

    def _scrape_peer(self, name: str, host: str, port: int) -> dict:
        """One node's merged ``/stats`` + ``/readyz`` scrape result."""
        view: dict = {
            "name": name,
            "endpoint": f"{host}:{port}",
            "scrape_ok": False,
            "ready": False,
            "ready_checks": None,
            "kind": None,
            "documents": None,
            "connected": None,
            "lag_bytes": None,
            "applied_position": None,
            "clock_offset_seconds": None,
            "error": None,
        }
        try:
            status, stats = http_get_json(
                host, port, "/stats", timeout=self.scrape_timeout
            )
            ready_status, ready = http_get_json(
                host, port, "/readyz", timeout=self.scrape_timeout
            )
        except Exception as exc:
            view["error"] = repr(exc)
            return view
        view["scrape_ok"] = status == 200
        view["ready"] = ready_status == 200
        if isinstance(ready, dict):
            view["ready_checks"] = ready.get("checks")
        if isinstance(stats, dict):
            node = stats.get("node") or {}
            view["kind"] = node.get("kind")
            view["documents"] = node.get("documents")
            replication = stats.get("replication")
            if isinstance(replication, dict):
                view["connected"] = replication.get("connected")
                view["lag_bytes"] = replication.get("lag_bytes")
                view["applied_position"] = replication.get("applied_position")
                view["clock_offset_seconds"] = replication.get(
                    "clock_offset_seconds"
                )
        return view

    def start(self) -> None:
        """Begin background polling every ``poll_interval`` seconds."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._poll_loop, name="cluster-telemetry", daemon=True
        )
        self._thread.start()

    def _poll_loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self.scrape_once()
            except Exception:  # pragma: no cover - scrape errors live in views
                pass

    def close(self) -> None:
        """Stop the background poller (idempotent)."""
        self._stop.set()
        thread = self._thread
        self._thread = None
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "ClusterTelemetry":
        """Context-manager entry: :meth:`start`, returning the aggregator."""
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    # ------------------------------------------------------------------
    # cross-node trace assembly
    # ------------------------------------------------------------------
    def assemble_trace(
        self, trace_id: str, skip_endpoint: tuple[str, int] | None = None
    ) -> dict:
        """Stitch every node's fragments of *trace_id* into one tree.

        Gathers the primary's own
        :class:`~repro.observability.tracestore.TraceStore` fragments
        plus each registered peer's ``/traces/<id>``, deduplicates by
        span id (the primary may also be registered as a peer), aligns
        each replica's fragment timestamps by its scraped
        ``clock_offset_seconds`` (the primary's clock is the reference),
        and returns the :func:`stitch_fragments` tree — served at
        ``/cluster/traces/<id>``.  Unreachable peers are reported in an
        ``"errors"`` list rather than failing the assembly.

        *skip_endpoint* names a peer ``(host, port)`` not to scrape: the
        ``TelemetryServer`` serving this assembly passes its own bound
        address, since a synchronous scrape of itself from inside its
        own event loop would block until the timeout (and the primary's
        fragments were already read directly from its store).
        """
        collected: dict[str, dict] = {}

        def absorb(fragments, offset: float | None = None) -> None:
            for fragment in fragments:
                if not isinstance(fragment, dict) or "span_id" not in fragment:
                    continue
                fragment = dict(fragment)
                if offset and isinstance(fragment.get("ts_unix"), (int, float)):
                    fragment["ts_unix"] = round(fragment["ts_unix"] - offset, 6)
                collected.setdefault(fragment["span_id"], fragment)

        store = getattr(self.primary, "trace_store", None)
        if store is not None:
            absorb(store.get(trace_id) or [])
        with self._lock:
            peers = dict(self._peers)
            offsets = {
                name: (self._views.get(name) or {}).get("clock_offset_seconds")
                for name in peers
            }
        errors: list[str] = []
        for name, (host, port) in peers.items():
            if skip_endpoint is not None and (host, port) == (
                str(skip_endpoint[0]),
                int(skip_endpoint[1]),
            ):
                continue
            try:
                status, payload = http_get_json(
                    host, port, f"/traces/{trace_id}", timeout=self.scrape_timeout
                )
            except Exception as exc:
                errors.append(f"{name}: {exc!r}")
                continue
            if status != 200 or not isinstance(payload, dict):
                continue
            absorb(payload.get("fragments") or [], offset=offsets.get(name))
        assembled = stitch_fragments(list(collected.values()))
        assembled["trace_id"] = trace_id
        if errors:
            assembled["errors"] = errors
        return assembled

    # ------------------------------------------------------------------
    # merged views
    # ------------------------------------------------------------------
    def replica_health(self, name: str) -> dict | None:
        """The last scraped view for node *name*, or ``None``.

        The shape a ``ReplicaSet`` health source needs: ``scrape_ok``,
        ``ready`` and ``lag_bytes`` drive routing; the rest is context.
        """
        with self._lock:
            view = self._views.get(name)
            return dict(view) if view is not None else None

    def ready(self) -> tuple[bool, dict]:
        """``(ok, detail)``: the whole cluster's readiness verdict.

        Fails when any scraped node is unreachable or not ready, when a
        scraped lag exceeds ``max_lag_bytes``, or when a live shipper
        session is stalled / over the bound.  Before the first scrape
        (no views, no sessions) the verdict is vacuously ok.
        """
        problems: list[str] = []
        with self._lock:
            views = [dict(view) for view in self._views.values()]
        for view in views:
            lag = view["lag_bytes"]
            if not view["scrape_ok"]:
                problems.append(f"{view['name']}: unreachable ({view['error']})")
            elif not view["ready"]:
                problems.append(f"{view['name']}: not ready")
            elif (
                self.max_lag_bytes is not None
                and lag is not None
                and lag > self.max_lag_bytes
            ):
                problems.append(
                    f"{view['name']}: lag {lag} > bound {self.max_lag_bytes}"
                )
        if self.shipper is not None:
            for session in self.shipper.sessions:
                stats = session.stats()
                peer, lag = stats.get("peer"), stats.get("lag_bytes")
                if stats.get("stalled"):
                    problems.append(f"session {peer}: stalled")
                elif (
                    self.max_lag_bytes is not None
                    and lag is not None
                    and lag > self.max_lag_bytes
                ):
                    problems.append(
                        f"session {peer}: lag {lag} > bound {self.max_lag_bytes}"
                    )
        return not problems, {"problems": problems, "nodes_scraped": len(views)}

    def cluster_view(self) -> dict:
        """The merged ``/cluster`` payload: per-node views + verdict."""
        ok, detail = self.ready()
        with self._lock:
            nodes = [dict(view) for view in self._views.values()]
        sessions = []
        if self.shipper is not None:
            sessions = [session.stats() for session in self.shipper.sessions]
        view: dict = {
            "ready": ok,
            "detail": detail,
            "max_lag_bytes": self.max_lag_bytes,
            "nodes": nodes,
            "shipper_sessions": sessions,
        }
        if self.primary is not None:
            position = self.primary.wal_position()
            view["primary"] = {
                "name": getattr(self.primary, "name", "primary"),
                "wal_position": str(position) if position is not None else None,
                "documents": len(self.primary),
            }
        return view
