"""Lightweight span-tree tracing for query and ingest paths.

A :class:`Span` is a named, monotonic-clock timing with attributes and
child spans — enough to reconstruct *where the time went* for one
operation: which pipeline stage, which shard, how long the WAL append
waited for its group-commit fsync.  Within a process the span is still
threaded explicitly through the call chain (``ExecutionContext.trace``,
``WalWriter.append(trace=...)``), which keeps the untraced path
completely allocation-free.

*Across* processes, :class:`TraceContext` is the propagation header: a
compact ``(trace_id, span_id, sampled)`` triple carried in
``RpcRequest`` headers and in WAL record metadata, so a server
continues the caller's trace (honouring the caller's sampling decision)
and a replica's apply span joins the trace of the ingest that produced
the WAL record.  Each node records its own *fragment* — a local span
tree plus the ids linking it to its parent fragment — into a
:class:`~repro.observability.tracestore.TraceStore`;
``ClusterTelemetry`` stitches fragments back into one cross-node tree.

:class:`Tracer` decides *whether* to trace: deterministic accumulator
sampling (no randomness, so traced workloads are reproducible) at a
configured ``sample_rate``; ``explain=True`` queries are always traced.

:class:`ExplainedResult` is what ``service.query(..., explain=True)``
returns — the ordinary result plus the finished span tree, with an
EXPLAIN ANALYZE-style text rendering.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "ExplainedResult",
    "Span",
    "TraceContext",
    "Tracer",
    "new_span_id",
    "new_trace_id",
]


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (64 random bits)."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 8-hex-char span id (32 random bits)."""
    return os.urandom(4).hex()


@dataclass(frozen=True)
class TraceContext:
    """The compact cross-process trace propagation header.

    ``trace_id`` names the end-to-end trace; ``span_id`` is the sender's
    span the receiver should parent its own fragment under; ``sampled``
    is the caller's sampling decision, which receivers honour instead of
    sampling locally.  Instances are immutable and pickle-stable, so the
    same object rides ``RpcRequest`` headers and WAL record metadata.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    @classmethod
    def root(cls, sampled: bool = True) -> "TraceContext":
        """A fresh root context: new trace id, new span id."""
        return cls(trace_id=new_trace_id(), span_id=new_span_id(), sampled=sampled)

    def child(self) -> "TraceContext":
        """Same trace and sampling decision, fresh span id.

        The returned context names a *new* span whose parent is
        ``self.span_id`` — pass it downstream so the next hop parents
        under the new span.
        """
        return TraceContext(
            trace_id=self.trace_id, span_id=new_span_id(), sampled=self.sampled
        )


class Span:
    """One timed node in a trace tree.

    Created running (``start`` taken from :func:`time.perf_counter`);
    :meth:`finish` freezes the duration.  Children may be added from
    multiple threads (the shard fan-out does) — the child list is
    guarded by a small per-span lock.
    """

    __slots__ = ("name", "attributes", "children", "_lock", "_start", "_elapsed")

    def __init__(self, name: str, **attributes: object) -> None:
        self.name = name
        self.attributes: dict[str, object] = dict(attributes)
        self.children: list[Span] = []
        self._lock = threading.Lock()
        self._start = time.perf_counter()
        self._elapsed: float | None = None

    # ------------------------------------------------------------------
    # building the tree
    # ------------------------------------------------------------------
    def child(self, name: str, **attributes: object) -> "Span":
        """Start and attach a child span (caller must ``finish()`` it)."""
        span = Span(name, **attributes)
        with self._lock:
            self.children.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator["Span"]:
        """Context manager: a child span finished on block exit."""
        child = self.child(name, **attributes)
        try:
            yield child
        finally:
            child.finish()

    def record(self, name: str, seconds: float, **attributes: object) -> "Span":
        """Attach an already-measured child of known duration."""
        span = Span.completed(name, seconds, **attributes)
        with self._lock:
            self.children.append(span)
        return span

    @classmethod
    def completed(cls, name: str, seconds: float, **attributes: object) -> "Span":
        """A standalone already-finished span of known duration.

        The root-span twin of :meth:`record`, for fragments measured
        before the span object exists (the shipper times the batch send,
        then builds one ship span per traced record it carried).
        """
        span = cls(name, **attributes)
        span._start = time.perf_counter() - seconds
        span._elapsed = seconds
        return span

    def annotate(self, **attributes: object) -> None:
        """Merge *attributes* into this span's attribute dict."""
        self.attributes.update(attributes)

    def finish(self) -> None:
        """Freeze the duration (idempotent — first finish wins)."""
        if self._elapsed is None:
            self._elapsed = time.perf_counter() - self._start

    # ------------------------------------------------------------------
    # reading the tree
    # ------------------------------------------------------------------
    @property
    def seconds(self) -> float:
        """Frozen duration, or time-so-far for a running span."""
        if self._elapsed is not None:
            return self._elapsed
        return time.perf_counter() - self._start

    def find(self, name: str) -> "Span | None":
        """Depth-first search for the first descendant named *name*."""
        with self._lock:
            children = list(self.children)
        for child in children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def names(self) -> set[str]:
        """Every span name in this subtree (including this span's)."""
        out = {self.name}
        with self._lock:
            children = list(self.children)
        for child in children:
            out |= child.names()
        return out

    def span_count(self) -> int:
        """Number of spans in this subtree (including this span)."""
        with self._lock:
            children = list(self.children)
        return 1 + sum(child.span_count() for child in children)

    def to_dict(self) -> dict[str, object]:
        """A JSON-safe nested dict of the subtree (ms durations)."""
        with self._lock:
            children = list(self.children)
        node: dict[str, object] = {
            "name": self.name,
            "ms": round(self.seconds * 1000.0, 3),
        }
        if self.attributes:
            node["attrs"] = dict(self.attributes)
        if children:
            node["children"] = [child.to_dict() for child in children]
        return node

    def report(self) -> str:
        """EXPLAIN ANALYZE-style indented rendering of the subtree."""
        lines: list[str] = []
        self._render(lines, prefix="", child_prefix="")
        return "\n".join(lines)

    def _render(self, lines: list[str], prefix: str, child_prefix: str) -> None:
        attrs = ""
        if self.attributes:
            inner = ", ".join(f"{k}={v}" for k, v in self.attributes.items())
            attrs = f"  [{inner}]"
        lines.append(f"{prefix}{self.name}  {self.seconds * 1000.0:.3f} ms{attrs}")
        with self._lock:
            children = list(self.children)
        for index, child in enumerate(children):
            last = index == len(children) - 1
            connector = "└─ " if last else "├─ "
            extension = "   " if last else "│  "
            child._render(lines, child_prefix + connector, child_prefix + extension)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, ms={self.seconds * 1000.0:.3f})"


class Tracer:
    """Deterministic sampling decisions for always-on tracing.

    ``sample_rate`` in ``[0, 1]``: 0 disables sampling entirely (the
    hot path then allocates no spans at all), 1 traces every operation.
    Fractional rates use an error accumulator rather than a PRNG, so a
    rate of 0.25 traces exactly every 4th operation — reproducible and
    bias-free without touching ``random``.
    """

    def __init__(self, sample_rate: float = 0.0) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.sample_rate = sample_rate
        self._lock = threading.Lock()
        self._accumulator = 0.0
        self.sampled_total = 0

    def should_sample(self) -> bool:
        """True when this operation should carry a span tree."""
        if self.sample_rate <= 0.0:
            return False
        if self.sample_rate >= 1.0:
            with self._lock:
                self.sampled_total += 1
            return True
        with self._lock:
            self._accumulator += self.sample_rate
            if self._accumulator >= 1.0:
                self._accumulator -= 1.0
                self.sampled_total += 1
                return True
        return False


@dataclass
class ExplainedResult:
    """A query result bundled with its full trace (``explain=True``).

    Iterates and indexes like the underlying result so existing
    tuple-consuming code works unchanged on an explained query.
    """

    result: object
    trace: Span
    kind: str = field(default="query")

    def report(self) -> str:
        """The EXPLAIN ANALYZE-style text rendering of the trace."""
        return self.trace.report()

    def to_dict(self) -> dict[str, object]:
        """The trace as a JSON-safe nested dict."""
        return self.trace.to_dict()

    def __iter__(self):
        return iter(self.result)  # type: ignore[call-overload]

    def __len__(self) -> int:
        return len(self.result)  # type: ignore[arg-type]
