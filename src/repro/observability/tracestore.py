"""Bounded per-node store of completed sampled traces, plus stitching.

Every node (primary service, replica, RPC server, even an
:class:`~repro.rpc.client.RpcClient`) keeps a :class:`TraceStore`: a
small ring of finished trace *fragments* indexed by trace_id.  A
fragment is one node-local span tree plus the ids that link it into the
cross-node trace — its own ``span_id``, the ``parent_span_id`` it hangs
under (the sender's span, from the propagated
:class:`~repro.observability.tracing.TraceContext`), and an approximate
wall-clock start for cross-node ordering.

``TelemetryServer`` serves the store at ``/traces`` (summaries) and
``/traces/<id>`` (that trace's fragments); ``ClusterTelemetry`` scrapes
the per-node endpoints and calls :func:`stitch_fragments` to reassemble
one tree per trace_id (``/cluster/traces/<id>``).

The ring is bounded two ways — at most ``capacity`` distinct trace ids,
at most ``max_fragments_per_trace`` fragments per id — so a node under
full sampling holds a fixed-size window of recent traces and nothing
grows without bound.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from .tracing import Span, TraceContext

__all__ = ["TraceStore", "stitch_fragments"]


class TraceStore:
    """A thread-safe ring of completed trace fragments, keyed by trace_id.

    Insertion order of *trace ids* drives eviction: when a fragment for
    a previously-unseen trace arrives and the store already holds
    ``capacity`` traces, the oldest trace (all its fragments) is
    dropped.  Fragments are serialised (``Span.to_dict``) at record
    time, so readers never touch live span objects.
    """

    def __init__(
        self, capacity: int = 128, max_fragments_per_trace: int = 64
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.max_fragments_per_trace = max_fragments_per_trace
        self._lock = threading.Lock()
        self._traces: OrderedDict[str, list[dict]] = OrderedDict()
        self.recorded_total = 0

    def record(
        self,
        context: TraceContext,
        span: Span,
        *,
        parent_span_id: str | None = None,
        kind: str = "span",
        node: str | None = None,
    ) -> dict:
        """Store finished *span* as a fragment of *context*'s trace.

        ``context.span_id`` becomes the fragment's own id (downstream
        fragments reference it as their ``parent_span_id``);
        *parent_span_id* is the id of the upstream span this fragment
        hangs under, or ``None`` for a trace root.  Returns the stored
        fragment dict (shared, treat as read-only).
        """
        span.finish()
        seconds = span.seconds
        fragment: dict = {
            "trace_id": context.trace_id,
            "span_id": context.span_id,
            "parent_span_id": parent_span_id,
            "kind": kind,
            "node": node,
            "ts_unix": round(time.time() - seconds, 6),
            "ms": round(seconds * 1000.0, 3),
            "root": span.to_dict(),
        }
        with self._lock:
            fragments = self._traces.get(context.trace_id)
            if fragments is None:
                while len(self._traces) >= self.capacity:
                    self._traces.popitem(last=False)
                fragments = []
                self._traces[context.trace_id] = fragments
            if len(fragments) < self.max_fragments_per_trace:
                fragments.append(fragment)
                self.recorded_total += 1
        return fragment

    def get(self, trace_id: str) -> list[dict] | None:
        """All stored fragments for *trace_id* (oldest first), or None."""
        with self._lock:
            fragments = self._traces.get(trace_id)
            return list(fragments) if fragments is not None else None

    def recent(self, limit: int = 50) -> list[dict]:
        """Newest-first per-trace summaries for the ``/traces`` listing."""
        with self._lock:
            items = list(self._traces.items())
        summaries = []
        for trace_id, fragments in reversed(items[-limit:] if limit else []):
            summaries.append(
                {
                    "trace_id": trace_id,
                    "fragments": len(fragments),
                    "kinds": sorted({f["kind"] for f in fragments}),
                    "ts_unix": min(f["ts_unix"] for f in fragments),
                    "ms": max(f["ms"] for f in fragments),
                    "root_names": sorted({f["root"]["name"] for f in fragments}),
                }
            )
        return summaries

    def clear(self) -> None:
        """Drop every stored trace."""
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        """Number of distinct trace ids currently stored."""
        with self._lock:
            return len(self._traces)


def _span_count(node: dict) -> int:
    """Spans in one serialised (``Span.to_dict``) tree."""
    return 1 + sum(_span_count(child) for child in node.get("children", ()))


def stitch_fragments(fragments: list[dict]) -> dict:
    """Assemble per-node fragments into one cross-node trace tree.

    Fragments are linked by ``parent_span_id`` → ``span_id``; fragments
    whose parent is unknown (or ``None``) become roots.  Children are
    ordered by aligned wall-clock start (``ts_unix``, already
    clock-offset-corrected by the caller where applicable).  The result
    is JSON-safe: roots carry nested ``"children"`` fragment lists.
    """
    by_span_id = {f["span_id"]: dict(f) for f in fragments}
    children: dict[str, list[dict]] = {}
    roots: list[dict] = []
    for fragment in by_span_id.values():
        parent = fragment["parent_span_id"]
        if parent is not None and parent in by_span_id and parent != fragment["span_id"]:
            children.setdefault(parent, []).append(fragment)
        else:
            roots.append(fragment)

    def attach(fragment: dict, seen: set[str]) -> dict:
        kids = sorted(
            children.get(fragment["span_id"], ()), key=lambda f: f["ts_unix"]
        )
        fragment["children"] = [
            attach(kid, seen | {kid["span_id"]})
            for kid in kids
            if kid["span_id"] not in seen
        ]
        return fragment

    roots.sort(key=lambda f: f["ts_unix"])
    tree = [attach(root, {root["span_id"]}) for root in roots]
    nodes = sorted({f["node"] for f in fragments if f.get("node")})
    return {
        "fragments": len(fragments),
        "nodes": nodes,
        "spans": sum(_span_count(f["root"]) for f in fragments),
        "roots": tree,
    }
