"""Ring-buffered slow-operation log with an optional JSON-lines sink.

Operations whose wall time crosses the service's ``slow_query_ms`` /
``slow_ingest_ms`` thresholds are summarised into one structured dict
(query hash, per-stage timings, shard, cache outcomes, WAL frame size —
plus the full span tree when the operation happened to be traced) and
:meth:`SlowOpLog.record`-ed here.  The most recent entries stay in an
in-memory ring (``service.recent_slow_ops()``); when a ``path`` is
given, every entry is also appended to that file as one JSON line, ready
for ``jq`` or log shipping.
"""

from __future__ import annotations

import json
import threading
from collections import deque

__all__ = ["SlowOpLog"]


class SlowOpLog:
    """Thread-safe ring buffer of slow-op entries + optional file sink."""

    def __init__(self, capacity: int = 256, path: str | None = None) -> None:
        if capacity <= 0:
            raise ValueError(f"slow-op log capacity must be positive, got {capacity}")
        self._lock = threading.Lock()
        self._entries: deque[dict] = deque(maxlen=capacity)
        self._path = str(path) if path is not None else None
        self._file = None
        if self._path is not None:
            self._file = open(self._path, "a", encoding="utf-8")

    def record(self, entry: dict) -> None:
        """Append *entry* to the ring (and the file sink, flushed)."""
        line = None
        if self._file is not None:
            # serialise outside the lock; entries are built JSON-safe
            line = json.dumps(entry, sort_keys=False, default=str)
        with self._lock:
            self._entries.append(entry)
            if self._file is not None and line is not None:
                self._file.write(line + "\n")
                self._file.flush()

    def recent(self, limit: int | None = None) -> list[dict]:
        """The most recent entries, newest first."""
        with self._lock:
            entries = list(self._entries)
        entries.reverse()
        if limit is not None:
            entries = entries[:limit]
        return entries

    def clear(self) -> None:
        """Drop the in-memory ring (the file sink is left as-is)."""
        with self._lock:
            self._entries.clear()

    def close(self) -> None:
        """Close the file sink (the ring stays readable)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
