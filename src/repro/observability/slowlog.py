"""Ring-buffered slow-operation log with a bounded JSON-lines sink.

Operations whose wall time crosses the service's ``slow_query_ms`` /
``slow_ingest_ms`` thresholds are summarised into one structured dict
(query hash, per-stage timings, shard, cache outcomes, WAL frame size —
plus the full span tree when the operation happened to be traced) and
:meth:`SlowOpLog.record`-ed here.  The most recent entries stay in an
in-memory ring (``service.recent_slow_ops()``); when a ``path`` is
given, every entry is also appended to that file as one JSON line, ready
for ``jq`` or log shipping.

The file sink is size-capped: when appending an entry would push the
file past ``max_file_bytes``, the file is rotated to ``<path>.1``
(replacing any previous rotation) and a fresh ``<path>`` is started —
so a long-lived service keeps at most two generations (~2x the cap) of
slow-op history on disk instead of growing without bound.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque

__all__ = ["SlowOpLog"]

#: default size cap of the JSON-lines sink before rotation (16 MiB)
DEFAULT_MAX_FILE_BYTES = 16 * 1024 * 1024


class SlowOpLog:
    """Thread-safe ring buffer of slow-op entries + bounded file sink.

    ``max_file_bytes`` caps the JSON-lines file: crossing it rotates
    ``path`` to ``path.1`` (one rotation generation is kept).  ``None``
    disables rotation (the pre-cap unbounded behaviour).
    """

    def __init__(
        self,
        capacity: int = 256,
        path: str | None = None,
        max_file_bytes: int | None = DEFAULT_MAX_FILE_BYTES,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"slow-op log capacity must be positive, got {capacity}")
        if max_file_bytes is not None and max_file_bytes <= 0:
            raise ValueError(
                f"max_file_bytes must be positive or None, got {max_file_bytes}"
            )
        self._lock = threading.Lock()
        self._entries: deque[dict] = deque(maxlen=capacity)
        self._path = str(path) if path is not None else None
        self._max_file_bytes = max_file_bytes
        self._file = None
        self._file_bytes = 0
        if self._path is not None:
            self._file = open(self._path, "a", encoding="utf-8")
            try:
                self._file_bytes = os.path.getsize(self._path)
            except OSError:  # pragma: no cover - freshly opened, unlikely
                self._file_bytes = 0

    def record(self, entry: dict) -> None:
        """Append *entry* to the ring (and the file sink, flushed).

        The sink write is rotation-aware: when this entry would push the
        file past ``max_file_bytes``, the current file becomes
        ``<path>.1`` first and the entry starts the fresh file.
        """
        line = None
        if self._file is not None:
            # serialise outside the lock; entries are built JSON-safe
            line = json.dumps(entry, sort_keys=False, default=str)
        with self._lock:
            self._entries.append(entry)
            if self._file is not None and line is not None:
                payload = line + "\n"
                size = len(payload.encode("utf-8"))
                if (
                    self._max_file_bytes is not None
                    and self._file_bytes > 0
                    and self._file_bytes + size > self._max_file_bytes
                ):
                    self._rotate_locked()
                self._file.write(payload)
                self._file.flush()
                self._file_bytes += size

    def _rotate_locked(self) -> None:
        """Rotate ``path`` to ``path.1`` and reopen a fresh sink (lock held)."""
        self._file.flush()
        self._file.close()
        try:
            os.replace(self._path, self._path + ".1")
        except OSError:  # pragma: no cover - e.g. the file was removed
            pass
        self._file = open(self._path, "a", encoding="utf-8")
        self._file_bytes = 0

    def recent(self, limit: int | None = None) -> list[dict]:
        """The most recent entries, newest first."""
        with self._lock:
            entries = list(self._entries)
        entries.reverse()
        if limit is not None:
            entries = entries[:limit]
        return entries

    def clear(self) -> None:
        """Drop the in-memory ring (the file sink is left as-is)."""
        with self._lock:
            self._entries.clear()

    def close(self) -> None:
        """Flush and close the file sink (the ring stays readable)."""
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._file.close()
                self._file = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
