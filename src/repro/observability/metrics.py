"""A small, dependency-free metrics registry (Prometheus-flavoured).

Three instrument kinds, all thread-safe:

* :class:`Counter` — a monotonically increasing number (queries served,
  WAL bytes appended).
* :class:`Gauge` — a number that can go up and down (checkpoint in
  progress, replication lag).  A gauge may instead be bound to a
  callback (:meth:`Gauge.set_function`) so it always reports a live
  value — e.g. ``lag_bytes`` computed from two WAL positions.
* :class:`Histogram` — power-of-two buckets (the same bucketing the WAL
  group-commit batch histogram has always used): an observation lands in
  the smallest power of two that is >= the value.  Works for integer
  batch sizes and for sub-second float latencies alike.

Instruments may be *labeled*: ``registry.counter(name, help,
labelnames=("shard",))`` returns a :class:`LabeledMetric` family whose
:meth:`LabeledMetric.labels` hands out one child per label value
(per-shard counters, per-stage timings, per-peer lag).

The registry renders every registered instrument as Prometheus text
exposition (:meth:`MetricsRegistry.render_text`) or as one JSON document
(:meth:`MetricsRegistry.render_json`), and :meth:`MetricsRegistry.snapshot`
returns a plain dict that is atomic *per metric* — every individual
counter/gauge/histogram is read consistently, while the document as a
whole is not a global atomic cut (no stop-the-world lock is taken).

Scrapes are fault-isolated: a callback gauge whose function raises
mid-``render_text`` does not abort the exposition — the broken sample is
skipped and counted in the ``metrics_callback_errors_total`` counter
(registered lazily, on the first error).

:func:`histogram_quantiles` estimates percentiles (p50/p95/p99 …)
straight from the power-of-two buckets, so long-lived services get
latency percentiles without keeping any per-observation state.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Callable, Hashable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledMetric",
    "MetricsRegistry",
    "histogram_quantiles",
]

#: lazily registered counter of callback-gauge failures during scrapes
CALLBACK_ERRORS_METRIC = "metrics_callback_errors_total"


def _pow2_bucket_int(value: int) -> int:
    """Smallest power of two >= ``value`` (values < 1 clamp to 1)."""
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


def _pow2_bucket_float(value: float) -> float:
    """Smallest power of two >= ``value`` for positive floats.

    Uses :func:`math.frexp` (``value = m * 2**e`` with ``0.5 <= m < 1``):
    the bucket exponent is ``e - 1`` when value is itself a power of two
    and ``e`` otherwise.  Non-positive values clamp to the smallest
    representable bucket.
    """
    if value <= 0.0:
        return 2.0 ** -64
    mantissa, exponent = math.frexp(value)
    if mantissa == 0.5:
        exponent -= 1
    return 2.0 ** exponent


def _format_number(value: float | int) -> str:
    """Prometheus-exposition formatting: integral values without a dot."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labelnames: tuple[str, ...], labelvalues: tuple) -> str:
    """Render ``{name="value",...}`` with minimal escaping."""
    parts = []
    for name, value in zip(labelnames, labelvalues):
        text = str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        parts.append(f'{name}="{text}"')
    return "{" + ",".join(parts) + "}"


class Counter:
    """A monotonically increasing metric value."""

    kind = "counter"

    def __init__(self, lock: threading.Lock | None = None) -> None:
        self._lock = lock if lock is not None else threading.Lock()
        self._value: float | int = 0

    def inc(self, amount: float | int = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float | int:
        """The current cumulative value."""
        with self._lock:
            return self._value

    def snapshot_value(self) -> float | int:
        """Alias of :attr:`value` (uniform instrument interface)."""
        return self.value


class Gauge:
    """A metric value that can move in both directions.

    :meth:`set_function` binds the gauge to a zero-argument callback so
    reads always reflect live state; a callback that raises falls back
    to the last explicitly stored value.
    """

    kind = "gauge"

    def __init__(self, lock: threading.Lock | None = None) -> None:
        self._lock = lock if lock is not None else threading.Lock()
        self._value: float | int = 0
        self._function: Callable[[], float] | None = None

    def set(self, value: float | int) -> None:
        """Store an explicit value."""
        with self._lock:
            self._value = value

    def inc(self, amount: float | int = 1) -> None:
        """Move the gauge up by *amount*."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float | int = 1) -> None:
        """Move the gauge down by *amount*."""
        with self._lock:
            self._value -= amount

    def set_max(self, value: float | int) -> None:
        """Raise the gauge to *value* if it is currently lower."""
        with self._lock:
            if value > self._value:
                self._value = value

    def set_function(self, function: Callable[[], float] | None) -> None:
        """Bind reads to *function* (``None`` unbinds)."""
        with self._lock:
            self._function = function

    @property
    def value(self) -> float | int:
        """The callback's value when bound, else the stored value."""
        with self._lock:
            function = self._function
            stored = self._value
        if function is not None:
            try:
                return function()
            except Exception:
                return stored
        return stored

    def sample(self) -> float | int:
        """The live value, *propagating* a callback's exception.

        :attr:`value` silently falls back to the stored value when a
        bound callback raises; scrape paths use this strict variant
        instead so a broken callback can be *detected* — the registry
        skips the sample and counts it in ``metrics_callback_errors_total``
        rather than exposing a stale number as if it were live.
        """
        with self._lock:
            function = self._function
            stored = self._value
        if function is not None:
            return function()
        return stored

    def snapshot_value(self) -> float | int:
        """Alias of :attr:`value` (uniform instrument interface)."""
        return self.value


class Histogram:
    """Power-of-two-bucket histogram of observed values.

    Integer observations bucket exactly like the WAL group-commit batch
    histogram always has (smallest power of two >= the batch size);
    float observations (latencies in seconds) use fractional powers of
    two so sub-millisecond timings stay distinguishable.
    """

    kind = "histogram"

    def __init__(self, lock: threading.Lock | None = None) -> None:
        self._lock = lock if lock is not None else threading.Lock()
        self._buckets: dict[float | int, int] = {}
        self._count = 0
        self._sum: float | int = 0

    def observe(self, value: float | int) -> None:
        """Record one observation."""
        if isinstance(value, int) and not isinstance(value, bool):
            bucket: float | int = _pow2_bucket_int(value)
        else:
            bucket = _pow2_bucket_float(float(value))
        with self._lock:
            self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float | int:
        """Sum of observations."""
        with self._lock:
            return self._sum

    def bucket_counts(self) -> dict[float | int, int]:
        """Non-cumulative ``{bucket upper bound: observations}``, sorted."""
        with self._lock:
            return dict(sorted(self._buckets.items()))

    def snapshot_value(self) -> dict[str, object]:
        """Count, sum and the (non-cumulative) bucket map, atomically."""
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "buckets": dict(sorted(self._buckets.items())),
            }


class LabeledMetric:
    """A family of like-typed children distinguished by label values.

    Children are created on first use (``family.labels(3)``) and are
    keyed by the *raw* label values handed in, so callers that label by
    shard id get integer keys back from :meth:`values`.
    """

    def __init__(self, factory: type, labelnames: tuple[str, ...]) -> None:
        self.labelnames = labelnames
        self._factory = factory
        self._lock = threading.Lock()
        self._children: dict[tuple, Counter | Gauge | Histogram] = {}

    @property
    def kind(self) -> str:
        """The child instrument kind (counter / gauge / histogram)."""
        return self._factory.kind

    def labels(self, *labelvalues: Hashable):
        """The child instrument for *labelvalues*, created on first use."""
        if len(labelvalues) != len(self.labelnames):
            raise ValueError(
                f"expected {len(self.labelnames)} label values "
                f"({', '.join(self.labelnames)}), got {len(labelvalues)}"
            )
        with self._lock:
            child = self._children.get(labelvalues)
            if child is None:
                # children share the family lock so a family snapshot is
                # one consistent cut across all of them
                child = self._factory(lock=self._lock)
                self._children[labelvalues] = child
            return child

    def values(self) -> dict:
        """``{label value(s): child value}`` — single labels unwrapped.

        Reading every child under the shared family lock makes the map
        one atomic cut of the family.
        """
        with self._lock:
            out = {}
            for key, child in self._children.items():
                if isinstance(child, Histogram):
                    value: object = {
                        "count": child._count,
                        "sum": child._sum,
                        "buckets": dict(sorted(child._buckets.items())),
                    }
                else:
                    value = child._value
                    if isinstance(child, Gauge) and child._function is not None:
                        # callback gauges cannot be read under the family
                        # lock (the callback may take other locks); fall
                        # through to the unlocked read below
                        value = None
                out[key[0] if len(key) == 1 else key] = (key, child, value)
        resolved = {}
        for short_key, (key, child, value) in out.items():
            resolved[short_key] = child.value if value is None else value
        return resolved

    def snapshot_value(self) -> dict[str, object]:
        """JSON-safe family snapshot: label values joined with commas."""
        return {
            ",".join(str(part) for part in (key if isinstance(key, tuple) else (key,))): value
            for key, value in self.values().items()
        }

    def items(self) -> list[tuple[tuple, object]]:
        """``(label values tuple, child value)`` pairs, insertion order."""
        return [
            (key if isinstance(key, tuple) else (key,), value)
            for key, value in self.values().items()
        ]

    def children(self) -> list[tuple[tuple, object]]:
        """``(label values tuple, child instrument)`` pairs, insertion order.

        Lets scrape paths sample each child individually (and strictly,
        via :meth:`Gauge.sample`) so one broken callback gauge cannot
        poison the whole family's exposition.
        """
        with self._lock:
            return list(self._children.items())


class MetricsRegistry:
    """A named collection of instruments with text / JSON exposition.

    Registration is get-or-create: asking twice for the same name
    returns the same instrument, so independent components (service,
    WAL, shipper, replica) can share one registry without coordination.
    Re-registering a name as a different kind or with different label
    names raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, tuple[str, tuple[str, ...], str, object]] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _register(
        self,
        factory: type,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...],
    ):
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                kind, existing_labels, _help, metric = existing
                if kind != factory.kind or existing_labels != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as {kind} "
                        f"with labels {existing_labels!r}"
                    )
                return metric
            if labelnames:
                metric: object = LabeledMetric(factory, labelnames)
            else:
                metric = factory()
            self._metrics[name] = (factory.kind, labelnames, help_text, metric)
            return metric

    def counter(
        self, name: str, help_text: str = "", labelnames: tuple[str, ...] = ()
    ) -> Counter | LabeledMetric:
        """Get or create the counter (or counter family) called *name*."""
        return self._register(Counter, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: tuple[str, ...] = ()
    ) -> Gauge | LabeledMetric:
        """Get or create the gauge (or gauge family) called *name*."""
        return self._register(Gauge, name, help_text, labelnames)

    def histogram(
        self, name: str, help_text: str = "", labelnames: tuple[str, ...] = ()
    ) -> Histogram | LabeledMetric:
        """Get or create the histogram (or family) called *name*."""
        return self._register(Histogram, name, help_text, labelnames)

    def get(self, name: str):
        """The instrument registered under *name*, else ``None``."""
        with self._lock:
            entry = self._metrics.get(name)
            return entry[3] if entry is not None else None

    def names(self) -> list[str]:
        """Registered metric names, in registration order."""
        with self._lock:
            return list(self._metrics)

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """``{name: value}`` for every instrument, atomic per metric.

        Counters/gauges map to their number; histograms to ``{count,
        sum, buckets}``; labeled families to a JSON-safe dict keyed by
        the label values joined with commas.
        """
        with self._lock:
            entries = list(self._metrics.items())
        return {name: entry[3].snapshot_value() for name, entry in entries}

    def render_json(self, indent: int | None = None) -> str:
        """The :meth:`snapshot` document serialised as JSON."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=False)

    def count_callback_error(self) -> None:
        """Account one callback-gauge failure seen during a scrape.

        The ``metrics_callback_errors_total`` counter is registered
        lazily — a registry whose callbacks never fail exposes exactly
        the metrics its owners registered and nothing else.
        """
        self.counter(
            CALLBACK_ERRORS_METRIC,
            "Gauge callbacks that raised during a scrape (sample skipped).",
        ).inc()

    def render_text(self) -> str:
        """Prometheus text exposition of every registered instrument.

        A callback gauge whose function raises does not abort the
        scrape: its sample line is skipped (the ``# HELP``/``# TYPE``
        header still renders) and the failure is counted in
        ``metrics_callback_errors_total``.
        """
        with self._lock:
            entries = list(self._metrics.items())
        lines: list[str] = []
        errors = 0
        for name, (kind, labelnames, help_text, metric) in entries:
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            if isinstance(metric, LabeledMetric):
                for labelvalues, child in metric.children():
                    try:
                        if kind == "histogram":
                            value: object = child.snapshot_value()
                        elif isinstance(child, Gauge):
                            value = child.sample()
                        else:
                            value = child.value
                    except Exception:
                        errors += 1
                        self.count_callback_error()
                        continue
                    labels = _format_labels(labelnames, labelvalues)
                    if kind == "histogram":
                        lines.extend(_histogram_lines(name, value, labels))
                    else:
                        lines.append(f"{name}{labels} {_format_number(value)}")
            elif kind == "histogram":
                lines.extend(_histogram_lines(name, metric.snapshot_value(), ""))
            else:
                try:
                    value = (
                        metric.sample() if isinstance(metric, Gauge) else metric.value
                    )
                except Exception:
                    errors += 1
                    self.count_callback_error()
                    continue
                lines.append(f"{name} {_format_number(value)}")
        if errors:
            counter = self.get(CALLBACK_ERRORS_METRIC)
            if not any(line.startswith(f"# TYPE {CALLBACK_ERRORS_METRIC} ") for line in lines):
                lines.append(
                    f"# HELP {CALLBACK_ERRORS_METRIC} Gauge callbacks that "
                    "raised during a scrape (sample skipped)."
                )
                lines.append(f"# TYPE {CALLBACK_ERRORS_METRIC} counter")
                lines.append(f"{CALLBACK_ERRORS_METRIC} {counter.value}")
        return "\n".join(lines) + "\n"


def _histogram_lines(name: str, snap: dict[str, object], labels: str) -> list[str]:
    """Cumulative ``_bucket``/``_sum``/``_count`` exposition lines."""
    buckets: dict = snap["buckets"]  # type: ignore[assignment]
    prefix = labels[:-1] + "," if labels else "{"
    cumulative = 0
    lines = []
    for bound in sorted(buckets):
        cumulative += buckets[bound]
        lines.append(
            f'{name}_bucket{prefix}le="{_format_number(bound)}"}} {cumulative}'
        )
    lines.append(f'{name}_bucket{prefix}le="+Inf"}} {snap["count"]}')
    lines.append(f"{name}_sum{labels} {_format_number(snap['sum'])}")
    lines.append(f"{name}_count{labels} {snap['count']}")
    return lines


def histogram_quantiles(
    histogram: Histogram | dict,
    percentiles: tuple[float, ...] = (50.0, 95.0, 99.0),
) -> dict[float, float]:
    """Estimate percentiles from a power-of-two-bucket histogram.

    Accepts a :class:`Histogram` (or anything with ``snapshot_value()``)
    or an already-taken snapshot dict ``{"count", "sum", "buckets"}``.
    The estimate is nearest-rank over the cumulative bucket counts with
    linear interpolation inside the landing bucket, whose lower edge is
    half its upper bound (a pow2 bucket covers ``(bound/2, bound]``).

    Returns ``{percentile: estimate}``; all zeros for an empty
    histogram.  Estimates are monotone in the percentile and never
    exceed the landing bucket's upper bound, so they are safe to use as
    p50 <= p95 <= p99 serving-latency figures without any
    per-observation bookkeeping.  Percentiles outside ``(0, 100]``
    raise ``ValueError``.
    """
    if hasattr(histogram, "snapshot_value"):
        snap = histogram.snapshot_value()
    else:
        snap = histogram
    count = int(snap["count"])  # type: ignore[call-overload]
    buckets: dict = snap["buckets"]  # type: ignore[assignment]
    bounds = sorted(buckets)
    estimates: dict[float, float] = {}
    for percentile in percentiles:
        if not 0.0 < percentile <= 100.0:
            raise ValueError(
                f"percentile must be in (0, 100], got {percentile}"
            )
        if count == 0:
            estimates[percentile] = 0.0
            continue
        rank = max(1, math.ceil(percentile / 100.0 * count))
        cumulative = 0
        estimate = float(bounds[-1])
        for bound in bounds:
            observations = buckets[bound]
            if cumulative + observations >= rank:
                lower = bound / 2
                fraction = (rank - cumulative) / observations
                estimate = lower + fraction * (bound - lower)
                break
            cumulative += observations
        estimates[percentile] = float(estimate)
    return estimates
