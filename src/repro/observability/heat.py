"""Per-shard heat accounting: the input signal for split/rebalance work.

A sharded service routes queries to every shard but documents to exactly
one, so load skews: one shard can absorb most of the splice bytes, scan
most of the skip-plan candidates, or dominate stage latency.  The
:class:`ShardHeatAccumulator` threads four cheap signals through the
query fan-out and the staged write path:

* **queries** routed to the shard (and the seconds they took);
* **skip-plan candidates** — candidate sentences the shard's plan
  actually scanned, a direct measure of index work;
* **splice bytes** — payload bytes spliced into (or un-spliced from)
  the shard by ingest, removal and replica apply;
* **EWMA stage latency** — exponentially weighted moving averages of
  the per-shard query and splice stage times, so *current* slowness is
  visible even on a long-lived service.

:meth:`ShardHeatAccumulator.report` folds them into a
:class:`ShardHeatReport` whose per-shard ``heat_score`` is a weighted
blend of each shard's share of every active signal — the
split-victim-selection substrate for online shard split/rebalance
(``report.hottest()`` is the candidate victim).  When a
:class:`~repro.observability.metrics.MetricsRegistry` is attached, the
new signals are mirrored as labeled instruments so ``/metrics`` scrapes
see them too.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass

from .metrics import MetricsRegistry

__all__ = ["HEAT_WEIGHTS", "ShardHeat", "ShardHeatAccumulator", "ShardHeatReport"]

#: relative weight of each signal in the blended heat score
HEAT_WEIGHTS = {
    "queries": 0.35,
    "skip_candidates": 0.25,
    "splice_bytes": 0.25,
    "latency": 0.15,
}


@dataclass
class ShardHeat:
    """One shard's accumulated heat signals (a point-in-time row)."""

    shard_id: int
    queries: int
    query_seconds: float
    skip_candidates: int
    splices: int
    splice_bytes: int
    ewma_query_seconds: float
    ewma_splice_seconds: float
    heat_score: float = 0.0

    def to_dict(self) -> dict:
        """The row as a JSON-safe dict (for ``/shards`` and logs)."""
        return asdict(self)


@dataclass
class ShardHeatReport:
    """All shards' heat rows plus the blended-score ranking."""

    shards: list[ShardHeat]

    def hottest(self) -> int | None:
        """The shard id with the highest heat score (ties break low).

        ``None`` when no signal has been recorded yet — a cold service
        has no meaningful split victim.
        """
        best: ShardHeat | None = None
        for heat in self.shards:
            if heat.heat_score > 0.0 and (
                best is None or heat.heat_score > best.heat_score
            ):
                best = heat
        return best.shard_id if best is not None else None

    def shard(self, shard_id: int) -> ShardHeat:
        """The row for *shard_id* (raises ``KeyError`` when unknown)."""
        for heat in self.shards:
            if heat.shard_id == shard_id:
                return heat
        raise KeyError(f"no shard {shard_id} in this heat report")

    def to_dict(self) -> dict:
        """The report as a JSON-safe dict (the ``/shards`` payload)."""
        return {
            "hottest_shard": self.hottest(),
            "weights": dict(HEAT_WEIGHTS),
            "shards": [heat.to_dict() for heat in self.shards],
        }

    def __len__(self) -> int:
        return len(self.shards)


class ShardHeatAccumulator:
    """Thread-safe per-shard heat counters with EWMA stage latency.

    Parameters
    ----------
    shards:
        Number of shards to account (fixed topology for now; the online
        split path will grow this).
    ewma_alpha:
        Weight of the newest observation in the moving stage-latency
        averages (``alpha * new + (1 - alpha) * old``); must be in
        ``(0, 1]``.
    registry:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`
        to mirror the *new* signals into (``koko_shard_skip_candidates_total``,
        ``koko_shard_splice_bytes_total`` and the two EWMA gauges);
        query counts are already covered by ``koko_shard_queries_total``.
    """

    def __init__(
        self,
        shards: int,
        *,
        ewma_alpha: float = 0.2,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self._ewma_alpha = ewma_alpha
        self._lock = threading.Lock()
        self._queries = [0] * shards
        self._query_seconds = [0.0] * shards
        self._skip_candidates = [0] * shards
        self._splices = [0] * shards
        self._splice_bytes = [0] * shards
        self._ewma_query = [0.0] * shards
        self._ewma_splice = [0.0] * shards
        self._candidates_family = None
        self._splice_bytes_family = None
        self._ewma_query_family = None
        self._ewma_splice_family = None
        if registry is not None:
            self._candidates_family = registry.counter(
                "koko_shard_skip_candidates_total",
                "Per-shard skip-plan candidate sentences scanned.",
                ("shard",),
            )
            self._splice_bytes_family = registry.counter(
                "koko_shard_splice_bytes_total",
                "Per-shard payload bytes spliced in or out.",
                ("shard",),
            )
            self._ewma_query_family = registry.gauge(
                "koko_shard_ewma_query_seconds",
                "EWMA of per-shard query-stage latency.",
                ("shard",),
            )
            self._ewma_splice_family = registry.gauge(
                "koko_shard_ewma_splice_seconds",
                "EWMA of per-shard splice-stage latency.",
                ("shard",),
            )

    @property
    def shard_count(self) -> int:
        """Number of shards being accounted."""
        return len(self._queries)

    def _ewma(self, previous: float, observed: float, first: bool) -> float:
        if first:
            return observed
        alpha = self._ewma_alpha
        return alpha * observed + (1.0 - alpha) * previous

    def record_query(
        self, shard_id: int, seconds: float, *, skip_candidates: int = 0
    ) -> None:
        """Account one query executed on *shard_id*.

        ``skip_candidates`` is the candidate-sentence count the shard's
        skip plan produced for this execution (0 when unknown).
        """
        with self._lock:
            first = self._queries[shard_id] == 0
            self._queries[shard_id] += 1
            self._query_seconds[shard_id] += seconds
            self._skip_candidates[shard_id] += skip_candidates
            self._ewma_query[shard_id] = self._ewma(
                self._ewma_query[shard_id], seconds, first
            )
            ewma = self._ewma_query[shard_id]
        if self._candidates_family is not None and skip_candidates:
            self._candidates_family.labels(shard_id).inc(skip_candidates)
        if self._ewma_query_family is not None:
            self._ewma_query_family.labels(shard_id).set(ewma)

    def record_splice(self, shard_id: int, nbytes: int, seconds: float = 0.0) -> None:
        """Account one splice (or un-splice) of *nbytes* into *shard_id*.

        ``seconds`` is the splice-stage wall time when the caller timed
        it (the staged write path does); 0.0 leaves the EWMA untouched.
        """
        with self._lock:
            self._splices[shard_id] += 1
            self._splice_bytes[shard_id] += nbytes
            ewma = self._ewma_splice[shard_id]
            if seconds > 0.0:
                first = ewma == 0.0
                self._ewma_splice[shard_id] = self._ewma(ewma, seconds, first)
                ewma = self._ewma_splice[shard_id]
        if self._splice_bytes_family is not None and nbytes:
            self._splice_bytes_family.labels(shard_id).inc(nbytes)
        if self._ewma_splice_family is not None and seconds > 0.0:
            self._ewma_splice_family.labels(shard_id).set(ewma)

    def report(self) -> ShardHeatReport:
        """One consistent cut of every shard's signals, scored.

        Each shard's ``heat_score`` is the weighted mean of its *share*
        of every signal that has any activity (signals with no activity
        anywhere are left out of the blend, so a query-only workload
        still ranks shards purely by query traffic).  Scores sum to
        ~1.0 across shards whenever anything was recorded.
        """
        with self._lock:
            rows = [
                ShardHeat(
                    shard_id=shard_id,
                    queries=self._queries[shard_id],
                    query_seconds=self._query_seconds[shard_id],
                    skip_candidates=self._skip_candidates[shard_id],
                    splices=self._splices[shard_id],
                    splice_bytes=self._splice_bytes[shard_id],
                    ewma_query_seconds=self._ewma_query[shard_id],
                    ewma_splice_seconds=self._ewma_splice[shard_id],
                )
                for shard_id in range(len(self._queries))
            ]
        signals = {
            "queries": [float(row.queries) for row in rows],
            "skip_candidates": [float(row.skip_candidates) for row in rows],
            "splice_bytes": [float(row.splice_bytes) for row in rows],
            "latency": [
                row.ewma_query_seconds + row.ewma_splice_seconds for row in rows
            ],
        }
        active = {
            name: values
            for name, values in signals.items()
            if sum(values) > 0.0
        }
        total_weight = sum(HEAT_WEIGHTS[name] for name in active)
        if total_weight > 0.0:
            for index, row in enumerate(rows):
                score = 0.0
                for name, values in active.items():
                    score += HEAT_WEIGHTS[name] * (values[index] / sum(values))
                row.heat_score = score / total_weight
        return ShardHeatReport(shards=rows)
