"""Observability primitives: metrics registry, span tracing, slow-op log.

This package is dependency-free and imports nothing from the rest of
``repro``, so every layer (engine stages, service, WAL, replication) can
use it without cycles:

* :mod:`repro.observability.metrics` — thread-safe counters, gauges
  (including callback gauges), power-of-two-bucket histograms, labeled
  families, and a :class:`MetricsRegistry` with Prometheus text / JSON
  exposition.
* :mod:`repro.observability.tracing` — the :class:`Span` tree threaded
  through query and ingest paths, the sampling :class:`Tracer`, and
  :class:`ExplainedResult` (``service.query(..., explain=True)``).
* :mod:`repro.observability.slowlog` — the :class:`SlowOpLog` ring
  buffer behind ``service.recent_slow_ops()``.
"""

from .metrics import Counter, Gauge, Histogram, LabeledMetric, MetricsRegistry
from .slowlog import SlowOpLog
from .tracing import ExplainedResult, Span, Tracer

__all__ = [
    "Counter",
    "ExplainedResult",
    "Gauge",
    "Histogram",
    "LabeledMetric",
    "MetricsRegistry",
    "SlowOpLog",
    "Span",
    "Tracer",
]
