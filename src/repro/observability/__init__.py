"""Observability primitives: metrics, tracing, slow-op log, telemetry plane.

This package is dependency-free and imports nothing from the rest of
``repro``, so every layer (engine stages, service, WAL, replication) can
use it without cycles:

* :mod:`repro.observability.metrics` — thread-safe counters, gauges
  (including callback gauges), power-of-two-bucket histograms, labeled
  families, percentile estimation (:func:`histogram_quantiles`), and a
  :class:`MetricsRegistry` with Prometheus text / JSON exposition.
* :mod:`repro.observability.tracing` — the :class:`Span` tree threaded
  through query and ingest paths, the sampling :class:`Tracer`, the
  cross-process :class:`TraceContext` propagation header, and
  :class:`ExplainedResult` (``service.query(..., explain=True)``).
* :mod:`repro.observability.tracestore` — the bounded per-node
  :class:`TraceStore` ring of completed sampled traces (served at
  ``/traces``) and :func:`stitch_fragments`, the cross-node trace
  assembly behind ``/cluster/traces/<id>``.
* :mod:`repro.observability.slowlog` — the :class:`SlowOpLog` ring
  buffer behind ``service.recent_slow_ops()``, with a size-capped
  JSON-lines file sink.
* :mod:`repro.observability.heat` — per-shard heat accounting
  (:class:`ShardHeatAccumulator` / :class:`ShardHeatReport`), the input
  signal for shard split/rebalance decisions.
* :mod:`repro.observability.exposition` — the network-facing telemetry
  plane: :class:`TelemetryServer` (``/metrics``, ``/healthz``,
  ``/readyz``, ``/stats``, ``/slowlog``, ``/shards``, ``/traces``) and
  :class:`ClusterTelemetry` (the scraped ``/cluster`` view and the
  stitched ``/cluster/traces/<id>`` cross-node traces).
"""

from .exposition import ClusterTelemetry, TelemetryServer, http_get_json, scrape
from .heat import HEAT_WEIGHTS, ShardHeat, ShardHeatAccumulator, ShardHeatReport
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LabeledMetric,
    MetricsRegistry,
    histogram_quantiles,
)
from .slowlog import SlowOpLog
from .tracestore import TraceStore, stitch_fragments
from .tracing import (
    ExplainedResult,
    Span,
    TraceContext,
    Tracer,
    new_span_id,
    new_trace_id,
)

__all__ = [
    "ClusterTelemetry",
    "Counter",
    "ExplainedResult",
    "Gauge",
    "HEAT_WEIGHTS",
    "Histogram",
    "LabeledMetric",
    "MetricsRegistry",
    "ShardHeat",
    "ShardHeatAccumulator",
    "ShardHeatReport",
    "SlowOpLog",
    "Span",
    "TelemetryServer",
    "TraceContext",
    "TraceStore",
    "Tracer",
    "histogram_quantiles",
    "http_get_json",
    "new_span_id",
    "new_trace_id",
    "scrape",
    "stitch_fragments",
]
