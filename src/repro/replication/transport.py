"""Pluggable message transports for log shipping.

Replication messages are small Python tuples (plus snapshot byte blobs);
a transport moves them between a primary-side shipper session and one
follower, in order, full-duplex:

* :class:`InProcessTransport` — a pair of queues, for replicas living in
  the same process (tests, benchmarks, embedded read scaling);
* :class:`TcpTransport` — length-prefixed pickle frames over a TCP
  socket, for replicas in other processes or on other hosts.

Both ends expose the same three calls: ``send(message)``,
``recv(timeout) -> message | None`` (``None`` = nothing arrived in time)
and ``close()``.  A closed or broken channel raises
:class:`TransportClosed` from either call, which the shipper and replica
treat as the end of the session.

**Trust model**: frames carry pickles — exactly what the WAL and
snapshots already store on disk — so the TCP transport is for links
inside one trust domain (the same place the primary's disk lives).  Do
not expose a shipping port to untrusted peers.
"""

from __future__ import annotations

import pickle
import queue
import socket
import struct
import threading

from ..errors import ReplicationError

__all__ = [
    "InProcessTransport",
    "TcpTransport",
    "TransportClosed",
    "connect_tcp",
]

_LENGTH = struct.Struct("<Q")

#: sentinel a closing end pushes so a blocked reader wakes immediately
_CLOSED = object()


class TransportClosed(ReplicationError):
    """The peer closed the channel (or the channel broke)."""


class InProcessTransport:
    """One end of an in-memory duplex message pipe.

    Build both ends with :meth:`pair`; messages put into one end come out
    of the other in order.  ``close()`` on either end wakes and closes
    both.
    """

    def __init__(
        self, outbox: "queue.Queue", inbox: "queue.Queue", name: str = "in-process"
    ) -> None:
        self._outbox = outbox
        self._inbox = inbox
        self._closed = threading.Event()
        self.name = name

    @classmethod
    def pair(cls) -> tuple["InProcessTransport", "InProcessTransport"]:
        """A connected ``(primary_end, replica_end)`` transport pair."""
        a_to_b: queue.Queue = queue.Queue()
        b_to_a: queue.Queue = queue.Queue()
        primary = cls(a_to_b, b_to_a, name="in-process/primary")
        replica = cls(b_to_a, a_to_b, name="in-process/replica")
        # closing either end must wake the other's blocked recv
        primary._peer = replica  # type: ignore[attr-defined]
        replica._peer = primary  # type: ignore[attr-defined]
        return primary, replica

    def send(self, message) -> None:
        """Enqueue one message for the peer."""
        if self._closed.is_set():
            raise TransportClosed(f"{self.name} transport is closed")
        self._outbox.put(message)

    def recv(self, timeout: float | None = None):
        """The next message, or ``None`` after *timeout* seconds of silence."""
        if self._closed.is_set() and self._inbox.empty():
            raise TransportClosed(f"{self.name} transport is closed")
        try:
            message = self._inbox.get(timeout=timeout)
        except queue.Empty:
            return None
        if message is _CLOSED:
            self._closed.set()
            raise TransportClosed(f"{self.name} transport is closed")
        return message

    def close(self) -> None:
        """Close both ends (idempotent); blocked receivers wake with
        :class:`TransportClosed`."""
        if self._closed.is_set():
            return
        self._closed.set()
        peer = getattr(self, "_peer", None)
        if peer is not None:
            peer._closed.set()
        # wake both directions
        self._outbox.put(_CLOSED)
        self._inbox.put(_CLOSED)


class TcpTransport:
    """Length-prefixed pickled messages over one TCP socket.

    ``send`` is serialised by a mutex (frames never interleave); ``recv``
    is meant for a single consumer thread, matching how the shipper
    session and the replica applier use it.
    """

    def __init__(self, sock: socket.socket, name: str | None = None) -> None:
        self._sock = sock
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._closed = False
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - e.g. unix sockets in reuse
            pass
        self.name = name or f"tcp/{sock.fileno()}"

    def send(self, message) -> None:
        """Frame and send one message; raises :class:`TransportClosed` on a
        broken pipe."""
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        with self._send_lock:
            if self._closed:
                raise TransportClosed(f"{self.name} transport is closed")
            try:
                self._sock.sendall(_LENGTH.pack(len(payload)) + payload)
            except OSError as exc:
                self._closed = True
                raise TransportClosed(f"{self.name}: send failed: {exc}") from exc

    def _read_exact(self, count: int) -> bytes:
        chunks: list[bytes] = []
        remaining = count
        while remaining:
            try:
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except (socket.timeout, BlockingIOError, InterruptedError):
                if chunks:
                    # mid-frame wait: keep reading, the frame is coming
                    continue
                raise socket.timeout() from None
            except OSError as exc:
                raise TransportClosed(f"{self.name}: recv failed: {exc}") from exc
            if not chunk:
                raise TransportClosed(f"{self.name}: peer closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self, timeout: float | None = None):
        """The next message, or ``None`` after *timeout* seconds of silence."""
        with self._recv_lock:
            if self._closed:
                raise TransportClosed(f"{self.name} transport is closed")
            # never 0 — that flips the socket into non-blocking mode, where
            # recv raises instead of waiting
            self._sock.settimeout(max(timeout, 1e-4) if timeout is not None else None)
            try:
                header = self._read_exact(_LENGTH.size)
                payload = self._read_exact(_LENGTH.unpack(header)[0])
            except socket.timeout:
                return None
            except TransportClosed:
                self._closed = True
                raise
        return pickle.loads(payload)

    def close(self) -> None:
        """Shut the socket down (idempotent); the peer's recv raises."""
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - best-effort
            pass


def connect_tcp(host: str, port: int, timeout: float = 10.0) -> TcpTransport:
    """Dial a primary's shipping listener and return the replica-side
    transport."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return TcpTransport(sock, name=f"tcp/{host}:{port}")
