"""Pluggable message transports for log shipping.

Replication messages are small Python tuples (plus snapshot byte blobs);
a transport moves them between a primary-side shipper session and one
follower, in order, full-duplex:

* :class:`InProcessTransport` — a pair of queues, for replicas living in
  the same process (tests, benchmarks, embedded read scaling);
* :class:`TcpTransport` — length-prefixed pickle frames over a TCP
  socket, for replicas in other processes or on other hosts.

Both ends expose the same three calls: ``send(message)``,
``recv(timeout) -> message | None`` (``None`` = nothing arrived in time)
and ``close()``.  A closed or broken channel raises
:class:`TransportClosed` from either call, which the shipper and replica
treat as the end of the session.

**Trust model**: frames carry pickles — exactly what the WAL and
snapshots already store on disk — so the TCP transport is for links
inside one trust domain (the same place the primary's disk lives).  A
non-loopback listener requires a shared ``auth_token`` (see
:meth:`LogShipper.listen <repro.replication.shipper.LogShipper.listen>`):
both ends prove knowledge of the token in a mutual HMAC
challenge-response over raw bytes *before* either unpickles anything
from the other.  The token gates
accidental exposure, not a hostile network — the frames themselves are
neither encrypted nor signed, so still keep shipping ports inside one
trust domain.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import pickle
import queue
import select
import socket
import struct
import threading

from ..errors import ReplicationError

__all__ = [
    "InProcessTransport",
    "TcpTransport",
    "TransportClosed",
    "answer_auth_challenge",
    "connect_tcp",
    "issue_auth_challenge",
]

_LENGTH = struct.Struct("<Q")

#: sentinel a closing end pushes so a blocked reader wakes immediately
_CLOSED = object()


class TransportClosed(ReplicationError):
    """The peer closed the channel (or the channel broke)."""


class InProcessTransport:
    """One end of an in-memory duplex message pipe.

    Build both ends with :meth:`pair`; messages put into one end come out
    of the other in order.  ``close()`` on either end wakes and closes
    both.
    """

    def __init__(
        self, outbox: "queue.Queue", inbox: "queue.Queue", name: str = "in-process"
    ) -> None:
        self._outbox = outbox
        self._inbox = inbox
        self._closed = threading.Event()
        self.name = name

    @classmethod
    def pair(cls) -> tuple["InProcessTransport", "InProcessTransport"]:
        """A connected ``(primary_end, replica_end)`` transport pair."""
        a_to_b: queue.Queue = queue.Queue()
        b_to_a: queue.Queue = queue.Queue()
        primary = cls(a_to_b, b_to_a, name="in-process/primary")
        replica = cls(b_to_a, a_to_b, name="in-process/replica")
        # closing either end must wake the other's blocked recv
        primary._peer = replica  # type: ignore[attr-defined]
        replica._peer = primary  # type: ignore[attr-defined]
        return primary, replica

    def send(self, message) -> None:
        """Enqueue one message for the peer."""
        if self._closed.is_set():
            raise TransportClosed(f"{self.name} transport is closed")
        self._outbox.put(message)

    def recv(self, timeout: float | None = None):
        """The next message, or ``None`` after *timeout* seconds of silence."""
        if self._closed.is_set() and self._inbox.empty():
            raise TransportClosed(f"{self.name} transport is closed")
        try:
            message = self._inbox.get(timeout=timeout)
        except queue.Empty:
            return None
        if message is _CLOSED:
            self._closed.set()
            raise TransportClosed(f"{self.name} transport is closed")
        return message

    def close(self) -> None:
        """Close both ends (idempotent); blocked receivers wake with
        :class:`TransportClosed`."""
        if self._closed.is_set():
            return
        self._closed.set()
        peer = getattr(self, "_peer", None)
        if peer is not None:
            peer._closed.set()
        # wake both directions
        self._outbox.put(_CLOSED)
        self._inbox.put(_CLOSED)


class TcpTransport:
    """Length-prefixed pickled messages over one TCP socket.

    ``send`` is serialised by a mutex (frames never interleave); ``recv``
    is meant for a single consumer thread, matching how the shipper
    session and the replica applier use it.
    """

    def __init__(self, sock: socket.socket, name: str | None = None) -> None:
        self._sock = sock
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._closed = False
        # the socket stays permanently blocking: recv timeouts are done via
        # select(), so they can never leak into a concurrent sendall() —
        # a socket-level timeout would govern both directions
        sock.settimeout(None)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - e.g. unix sockets in reuse
            pass
        self.name = name or f"tcp/{sock.fileno()}"

    def send(self, message) -> None:
        """Frame and send one message; raises :class:`TransportClosed` on a
        broken pipe."""
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        with self._send_lock:
            if self._closed:
                raise TransportClosed(f"{self.name} transport is closed")
            try:
                self._sock.sendall(_LENGTH.pack(len(payload)) + payload)
            except OSError as exc:
                self._closed = True
                raise TransportClosed(f"{self.name}: send failed: {exc}") from exc

    def _read_exact(self, count: int) -> bytes:
        chunks: list[bytes] = []
        remaining = count
        while remaining:
            try:
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except InterruptedError:  # pragma: no cover - signal race
                continue
            except OSError as exc:
                raise TransportClosed(f"{self.name}: recv failed: {exc}") from exc
            if not chunk:
                raise TransportClosed(f"{self.name}: peer closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self, timeout: float | None = None):
        """The next message, or ``None`` after *timeout* seconds of silence."""
        with self._recv_lock:
            if self._closed:
                raise TransportClosed(f"{self.name} transport is closed")
            if timeout is not None:
                # wait for the first byte with select(): the socket itself
                # stays blocking, so once a frame starts we read it whole
                try:
                    ready, _, _ = select.select(
                        [self._sock], [], [], max(timeout, 0.0)
                    )
                except (OSError, ValueError) as exc:
                    self._closed = True
                    raise TransportClosed(
                        f"{self.name}: recv failed: {exc}"
                    ) from exc
                if not ready:
                    return None
            try:
                header = self._read_exact(_LENGTH.size)
                payload = self._read_exact(_LENGTH.unpack(header)[0])
            except TransportClosed:
                self._closed = True
                raise
        return pickle.loads(payload)

    def close(self) -> None:
        """Shut the socket down (idempotent); the peer's recv raises."""
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - best-effort
            pass


# -- shared-secret handshake -------------------------------------------
#
# A *mutual* challenge-response over raw bytes, before either side
# unpickles anything from the other:
#
#   listener -> dialer : server_nonce
#   dialer  -> listener: client_nonce + HMAC(token, "client" + server_nonce)
#   listener -> dialer : HMAC(token, "server" + client_nonce)
#
# Each direction uses its own domain prefix so an answer can never be
# reflected back as a proof; comparisons are constant-time.  The dialer
# verifying the listener matters just as much as the reverse: a replica
# misdirected at the wrong endpoint must not unpickle frames from it.

_AUTH_NONCE_LEN = 16
_AUTH_DIGEST_LEN = hashlib.sha256().digest_size


def _token_bytes(token: bytes | str) -> bytes:
    return token.encode("utf-8") if isinstance(token, str) else bytes(token)


def _auth_digest(token: bytes | str, direction: bytes, nonce: bytes) -> bytes:
    return hmac.new(_token_bytes(token), direction + nonce, hashlib.sha256).digest()


def _send_raw(sock: socket.socket, payload: bytes) -> None:
    try:
        sock.sendall(payload)
    except OSError as exc:
        raise TransportClosed(f"auth handshake failed: {exc}") from exc


def _recv_raw_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly *count* raw bytes (pre-framing, used only for auth)."""
    chunks: list[bytes] = []
    while count:
        try:
            chunk = sock.recv(count)
        except OSError as exc:
            raise TransportClosed(f"auth handshake failed: {exc}") from exc
        if not chunk:
            raise TransportClosed("peer closed during auth handshake")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def answer_auth_challenge(sock: socket.socket, token: bytes | str) -> None:
    """Dialer side of the mutual handshake; raises :class:`TransportClosed`
    when the listener rejects us or cannot prove it knows the token."""
    server_nonce = _recv_raw_exact(sock, _AUTH_NONCE_LEN)
    client_nonce = os.urandom(_AUTH_NONCE_LEN)
    _send_raw(
        sock, client_nonce + _auth_digest(token, b"client", server_nonce)
    )
    proof = _recv_raw_exact(sock, _AUTH_DIGEST_LEN)
    if not hmac.compare_digest(
        proof, _auth_digest(token, b"server", client_nonce)
    ):
        raise TransportClosed(
            "listener failed the auth handshake: wrong or missing token "
            "(is this really a shipping port?)"
        )


def issue_auth_challenge(sock: socket.socket, token: bytes | str) -> bool:
    """Listener side of the mutual handshake; True when the dialer's
    answer matches (the listener's own proof is then sent back)."""
    server_nonce = os.urandom(_AUTH_NONCE_LEN)
    _send_raw(sock, server_nonce)
    answer = _recv_raw_exact(sock, _AUTH_NONCE_LEN + _AUTH_DIGEST_LEN)
    client_nonce, digest = answer[:_AUTH_NONCE_LEN], answer[_AUTH_NONCE_LEN:]
    if not hmac.compare_digest(
        digest, _auth_digest(token, b"client", server_nonce)
    ):
        return False
    _send_raw(sock, _auth_digest(token, b"server", client_nonce))
    return True


def connect_tcp(
    host: str,
    port: int,
    timeout: float = 10.0,
    auth_token: bytes | str | None = None,
) -> TcpTransport:
    """Dial a primary's shipping listener and return the replica-side
    transport.

    Pass the listener's shared ``auth_token`` when it was started with
    one (mandatory for non-loopback listeners); the mutual handshake runs
    — and the listener must prove it knows the token too — before any
    replication frame is exchanged.
    """
    sock = socket.create_connection((host, port), timeout=timeout)
    if auth_token is not None:
        try:
            # the connect timeout still governs the socket here, so a
            # listener that never answers cannot hang the dial forever
            answer_auth_challenge(sock, auth_token)
        except TransportClosed:
            sock.close()
            raise
    return TcpTransport(sock, name=f"tcp/{host}:{port}")
