"""Primary-side log shipping: snapshot bootstrap + WAL tail streaming.

A :class:`LogShipper` attaches to a durable :class:`~repro.service.KokoService`
and serves any number of follower sessions, each over its own transport:

1. **Bootstrap** — the follower subscribes; the session ships the latest
   valid snapshot's raw bytes (manifest + per-shard corpus/index files,
   digests intact), or — when the follower asks to *resume* from a log
   position the primary can still serve — skips the snapshot entirely.
2. **Tail** — the session follows the write-ahead log with a
   :class:`~repro.persistence.WalCursor`, shipping each record's frame
   payload verbatim together with its log position, across segment
   rotations.
3. **Flow control** — the follower acks applied positions; the session
   tracks the ack, computes the follower's byte lag from the on-disk
   segment sizes, and heartbeats the primary's durable end position so
   the follower can measure its own staleness.

**Checkpoint coordination.**  Each live session pins the WAL segments it
still needs (its ack position, falling back to its read position) via
``KokoService.register_wal_pin``; checkpoint pruning keeps everything at
or above the lowest pin, so a follower mid-tail never loses records a
rotation folded away.  A session that stops acking for
``stall_timeout`` seconds drops its pin (so one dead follower cannot
make the log grow without bound) and is marked *stalled*; if it revives
after its segments were pruned, the cursor raises and the session tells
the follower to reconnect — which re-bootstraps from a fresh snapshot.
"""

from __future__ import annotations

import ipaddress
import socket
import threading
import time

from ..errors import PersistenceError, ReplicationError
from ..observability.metrics import MetricsRegistry
from ..observability.tracing import Span, TraceContext, new_span_id
from ..persistence import WalCursor, WalPosition, read_snapshot_payloads
from ..persistence.wal import WalRecord
from ..persistence.snapshot import find_latest_valid
from .transport import TcpTransport, TransportClosed, issue_auth_challenge

__all__ = ["LogShipper", "ShipperSession"]


def _is_loopback(host: str) -> bool:
    """True when *host* can only be reached from this machine."""
    if host == "localhost":
        return True
    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        return False  # a hostname: assume reachable, require a token


class ShipperSession:
    """One follower's shipping session (a daemon thread on the primary)."""

    def __init__(self, shipper: "LogShipper", transport, session_id: int) -> None:
        self._shipper = shipper
        self._transport = transport
        self.session_id = session_id
        self.peer = getattr(transport, "name", f"session-{session_id}")
        self._lock = threading.Lock()
        self._position: WalPosition | None = None  # next-read point
        self._acked: WalPosition | None = None
        self._started_monotonic = time.monotonic()
        self._last_ack_monotonic = self._started_monotonic
        self._acked_once = False  # True once the follower's first ack lands
        self.records_shipped = 0
        self.bytes_shipped = 0
        self.snapshot_bytes = 0
        self.snapshot_checkpoint_id: int | None = None
        self.resumed = False
        self.error: str | None = None
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"koko-shipper-{session_id}", daemon=True
        )

    # -- observability --------------------------------------------------
    @property
    def position(self) -> WalPosition | None:
        """The session's read position (next record to ship)."""
        with self._lock:
            return self._position

    @property
    def acked(self) -> WalPosition | None:
        """The latest position the follower acknowledged as applied."""
        with self._lock:
            return self._acked

    @property
    def last_ack_age_seconds(self) -> float:
        """Seconds since the follower last acked (or since session start)."""
        with self._lock:
            return time.monotonic() - self._last_ack_monotonic

    @property
    def stalled(self) -> bool:
        """True when the follower has not acked within ``stall_timeout``.

        Until the follower's **first ack** lands, the session is exempt up
        to ``bootstrap_timeout`` instead: a fresh follower first receives
        the snapshot, then deserialises it and builds its service before
        its applier can ack anything — legitimately longer than
        ``stall_timeout``, and dropping the WAL retention pin during that
        window would let a checkpoint prune exactly the segments the
        follower is about to need.
        """
        with self._lock:
            if not self._acked_once:
                elapsed = time.monotonic() - self._started_monotonic
                return elapsed > self._shipper.bootstrap_timeout
        return self.last_ack_age_seconds > self._shipper.stall_timeout

    @property
    def alive(self) -> bool:
        """True while the session thread is running."""
        return self._thread.is_alive()

    def lag_bytes(self) -> int | None:
        """The follower's byte distance behind the primary's durable end.

        Computed from on-disk segment sizes between the acked position and
        the current durable position; ``None`` when unknown (never acked,
        or the spanned segments are gone — a stalled follower whose pin
        was dropped).
        """
        acked = self.acked
        end = self._shipper.service.wal_position()
        if acked is None or end is None:
            return None
        return self._shipper._bytes_between(acked, end)

    def pin(self) -> int | None:
        """The lowest WAL segment this session still needs retained."""
        if self.stalled or not self.alive:
            return None  # a dead follower must not pin the log forever
        with self._lock:
            anchor = self._acked or self._position
        return anchor.segment_id if anchor is not None else None

    def stats(self) -> dict:
        """A point-in-time description of this session (for operators)."""
        acked = self.acked
        position = self.position
        return {
            "peer": self.peer,
            "alive": self.alive,
            "stalled": self.stalled,
            "resumed": self.resumed,
            "position": str(position) if position else None,
            "acked": str(acked) if acked else None,
            "lag_bytes": self.lag_bytes(),
            "last_ack_age_seconds": self.last_ack_age_seconds,
            "records_shipped": self.records_shipped,
            "bytes_shipped": self.bytes_shipped,
            "snapshot_bytes": self.snapshot_bytes,
            "snapshot_checkpoint_id": self.snapshot_checkpoint_id,
            "error": self.error,
        }

    # -- session body ---------------------------------------------------
    def start(self) -> None:
        """Begin serving the follower."""
        self._thread.start()

    def _run(self) -> None:
        try:
            self._serve()
        except TransportClosed:
            pass  # normal end of session
        except Exception as exc:  # pragma: no cover - transport races
            self.error = repr(exc)
        finally:
            try:
                self._transport.close()
            except Exception:  # pragma: no cover - best-effort
                pass
            self._shipper._session_ended(self)

    def _serve(self) -> None:
        shipper = self._shipper
        subscribe = self._transport.recv(timeout=shipper.subscribe_timeout)
        if subscribe is None or subscribe[0] != "subscribe":
            raise ReplicationError(
                f"session {self.session_id}: expected a subscribe message, "
                f"got {subscribe!r}"
            )
        resume = subscribe[1].get("resume")
        start = self._try_resume(resume)
        if start is None:
            start = self._bootstrap()
        with self._lock:
            self._position = start
            self._last_ack_monotonic = time.monotonic()
        cursor = WalCursor(shipper.layout, start)
        last_heartbeat = 0.0
        while not self._stop.is_set():
            try:
                batch = cursor.poll(
                    max_records=shipper.batch_max_records,
                    max_bytes=shipper.batch_max_bytes,
                    # never ship past the durable end: a follower must not
                    # apply a record a primary crash could still discard
                    up_to=shipper.service.wal_position(),
                )
            except PersistenceError as exc:
                # segments pruned under a (previously stalled) cursor, or a
                # corrupt sealed segment: the follower must re-bootstrap
                self.error = repr(exc)
                self._transport.send(("restart", {"reason": repr(exc)}))
                return
            if batch:
                end = shipper.service.wal_position()
                send_started = time.perf_counter()
                self._transport.send(("records", batch, end))
                send_seconds = time.perf_counter() - send_started
                with self._lock:
                    self._position = batch[-1][0]
                batch_bytes = sum(len(p) for _, p in batch)
                self.records_shipped += len(batch)
                self.bytes_shipped += batch_bytes
                shipper._records_metric.inc(len(batch))
                shipper._bytes_metric.inc(batch_bytes)
                if getattr(shipper.service, "wal_traces_logged", 0) > 0:
                    self._record_ship_traces(batch, batch_bytes, send_seconds)
                self._drain_acks(block=False)
            else:
                # caught up: the recv timeout doubles as the poll interval
                self._drain_acks(block=True)
            now = time.monotonic()
            if now - last_heartbeat >= shipper.heartbeat_interval:
                last_heartbeat = now
                lag = self.lag_bytes()
                shipper._lag_gauge.labels(self.peer).set(
                    float(lag) if lag is not None else -1.0
                )
                self._transport.send(
                    (
                        "heartbeat",
                        {
                            "end": shipper.service.wal_position(),
                            "acked": self.acked,
                            "lag_bytes": lag,
                            # wall-clock send time: the follower derives its
                            # clock offset from this, which ClusterTelemetry
                            # uses to align trace fragments across nodes
                            "sent_unix": time.time(),
                        },
                    )
                )

    def _record_ship_traces(
        self, batch: list, batch_bytes: int, send_seconds: float
    ) -> None:
        """Record a ``wal.ship`` trace fragment per traced record shipped.

        Only called once the primary has ever logged a traced WAL record
        (``service.wal_traces_logged``), so untraced workloads never pay
        for re-decoding shipped payloads.  Each sampled record gets a
        fragment parented under the ingest's WAL-metadata span, with the
        batch's transport send time as its duration — the "ship latency"
        leg of a cross-node trace.
        """
        service = self._shipper.service
        store = getattr(service, "trace_store", None)
        if store is None:
            return
        for position, payload in batch:
            try:
                record = WalRecord.from_payload(payload)
            except Exception:  # pragma: no cover - corrupt payload races
                continue
            trace = record.trace
            if trace is None or not trace.sampled:
                continue
            span = Span.completed(
                "wal.ship",
                send_seconds,
                peer=self.peer,
                doc_id=record.doc_id,
                position=str(position),
                batch_records=len(batch),
                batch_bytes=batch_bytes,
            )
            context = TraceContext(
                trace_id=trace.trace_id, span_id=new_span_id(), sampled=True
            )
            store.record(
                context,
                span,
                parent_span_id=trace.span_id,
                kind="ship",
                node=getattr(service, "name", None),
            )

    def _try_resume(self, resume: WalPosition | None) -> WalPosition | None:
        """Validate a follower's resume position; None = must bootstrap.

        A resume is honoured only when the position does not exceed the
        primary's durable end (a follower that applied records a crash
        discarded must rebuild) and its segment is still on disk.
        """
        if resume is None:
            return None
        end = self._shipper.service.wal_position()
        if end is None or resume > end:
            return None
        if not self._shipper.layout.wal_path(resume.segment_id).exists():
            return None
        self.resumed = True
        with self._lock:
            # a resumed follower has live state and can ack immediately:
            # no bootstrap grace, the ordinary stall clock applies
            self._acked_once = True
        self._transport.send(("hello", {"mode": "resume", "start": resume}))
        return resume

    def _bootstrap(self) -> WalPosition:
        """Ship the latest valid snapshot; returns the tail start position.

        Retries when a snapshot is pruned mid-read (a concurrent
        checkpoint superseded it twice) — the retry picks the newer one.
        """
        layout = self._shipper.layout
        ship_started = time.perf_counter()
        for _ in range(8):
            checkpoint_id = find_latest_valid(layout)
            if checkpoint_id is None:
                raise ReplicationError(
                    "primary has no valid snapshot to bootstrap from"
                )
            # pin the tail before the (possibly long) snapshot read, so a
            # concurrent checkpoint cannot fold the segments away first
            with self._lock:
                self._position = WalPosition(checkpoint_id + 1, 0)
            try:
                manifest, payloads = read_snapshot_payloads(layout, checkpoint_id)
            except PersistenceError:
                continue  # pruned or torn under us; re-pick
            self.snapshot_checkpoint_id = checkpoint_id
            self.snapshot_bytes = sum(len(p) for p in payloads.values())
            start = WalPosition(checkpoint_id + 1, 0)
            self._transport.send(("hello", {"mode": "snapshot", "start": start}))
            self._transport.send(
                ("snapshot", {"manifest": manifest, "files": payloads})
            )
            self._shipper._snapshot_bytes_metric.inc(self.snapshot_bytes)
            self._shipper._snapshot_ship_seconds.observe(
                time.perf_counter() - ship_started
            )
            return start
        raise ReplicationError("snapshot bootstrap kept losing races with pruning")

    def _drain_acks(self, block: bool) -> None:
        """Absorb follower messages; *block* waits one poll interval."""
        shipper = self._shipper
        while True:
            message = self._transport.recv(
                timeout=shipper.poll_interval if block else 0.0
            )
            if message is None:
                return
            if message[0] == "ack":
                with self._lock:
                    acked = message[1]
                    if self._acked is None or acked > self._acked:
                        self._acked = acked
                    self._last_ack_monotonic = time.monotonic()
                    # the follower is demonstrably alive and applying:
                    # the ordinary stall clock takes over from here
                    self._acked_once = True
            block = False  # drain whatever queued, then return

    def close(self) -> None:
        """End the session and wake the follower (idempotent)."""
        self._stop.set()
        try:
            self._transport.close()
        except Exception:  # pragma: no cover - best-effort
            pass
        if self._thread.is_alive() and self._thread is not threading.current_thread():
            self._thread.join(timeout=5.0)


class LogShipper:
    """Streams a durable service's snapshot + WAL to follower sessions.

    Parameters
    ----------
    service:
        The primary — must have been constructed with ``storage_dir`` (the
        WAL and snapshots are what get shipped).
    poll_interval:
        Seconds a caught-up session waits between WAL polls (the wait
        doubles as the ack-receive timeout).
    heartbeat_interval:
        Seconds between ``heartbeat`` messages to each follower.
    batch_max_records, batch_max_bytes:
        Bounds on one ``records`` message.
    stall_timeout:
        Seconds without an ack after which a *tailing* session stops
        pinning WAL segments (and reports itself stalled).  A revived
        follower whose segments were pruned is told to reconnect and
        re-bootstrap.
    bootstrap_timeout:
        Seconds a session may hold its retention pin before its
        follower's **first ack**.  Covers shipping the snapshot *and* the
        follower deserialising it and building its service — both
        legitimately slower than ``stall_timeout``; matches the
        follower's snapshot receive window by default.
    subscribe_timeout:
        Seconds a fresh session waits for the follower's subscribe.
    """

    def __init__(
        self,
        service,
        poll_interval: float = 0.02,
        heartbeat_interval: float = 0.5,
        batch_max_records: int = 256,
        batch_max_bytes: int = 4 * 1024 * 1024,
        stall_timeout: float = 60.0,
        bootstrap_timeout: float = 600.0,
        subscribe_timeout: float = 30.0,
    ) -> None:
        if service.storage_dir is None:
            raise ReplicationError(
                "log shipping needs a durable primary (storage_dir=...)"
            )
        self.service = service
        self.layout = service._layout
        self.poll_interval = poll_interval
        self.heartbeat_interval = heartbeat_interval
        self.batch_max_records = batch_max_records
        self.batch_max_bytes = batch_max_bytes
        self.stall_timeout = stall_timeout
        self.bootstrap_timeout = bootstrap_timeout
        self.subscribe_timeout = subscribe_timeout
        self._auth_token: bytes | str | None = None
        self._lock = threading.Lock()
        self._sessions: list[ShipperSession] = []
        self._next_session_id = 0
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._closed = False
        # Shipping metrics live in the primary's registry, so one
        # render_text() covers service + persistence + replication.
        registry = getattr(getattr(service, "stats", None), "registry", None)
        self.metrics: MetricsRegistry = (
            registry if registry is not None else MetricsRegistry()
        )
        self._sessions_gauge = self.metrics.gauge(
            "koko_shipper_sessions", "Live follower shipping sessions."
        )
        self._sessions_gauge.set_function(lambda: float(len(self.sessions)))
        self._stalled_gauge = self.metrics.gauge(
            "koko_shipper_stalled_sessions",
            "Sessions whose follower stopped acking within the stall timeout.",
        )
        self._stalled_gauge.set_function(
            lambda: float(sum(1 for s in self.sessions if s.stalled))
        )
        self._records_metric = self.metrics.counter(
            "koko_shipper_records_shipped_total",
            "WAL records shipped to followers across all sessions.",
        )
        self._bytes_metric = self.metrics.counter(
            "koko_shipper_bytes_shipped_total",
            "WAL payload bytes shipped to followers across all sessions.",
        )
        self._snapshot_bytes_metric = self.metrics.counter(
            "koko_shipper_snapshot_bytes_shipped_total",
            "Snapshot bytes shipped during follower bootstraps.",
        )
        self._snapshot_ship_seconds = self.metrics.histogram(
            "koko_shipper_snapshot_ship_seconds",
            "Wall-clock per snapshot bootstrap (read + ship), pow-2 buckets.",
        )
        self._lag_gauge = self.metrics.gauge(
            "koko_shipper_lag_bytes",
            "Per-follower byte lag behind the durable end (-1 = unknown).",
            labelnames=("peer",),
        )
        service.register_wal_pin(self._wal_floor)

    # -- serving --------------------------------------------------------
    def serve(self, transport) -> ShipperSession:
        """Serve one follower over *transport*; returns the live session."""
        with self._lock:
            if self._closed:
                raise ReplicationError("log shipper is closed")
            session = ShipperSession(self, transport, self._next_session_id)
            self._next_session_id += 1
            self._sessions.append(session)
        session.start()
        return session

    def listen(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_token: bytes | str | None = None,
        allow_unauthenticated: bool = False,
    ) -> tuple[str, int]:
        """Accept TCP followers on ``host:port``; returns the bound address.

        ``port=0`` binds an ephemeral port.  Each accepted connection gets
        its own :class:`ShipperSession`.

        Replication frames are pickles, so an open shipping port grants
        whoever reaches it code execution on this process.  With
        ``auth_token`` set, every accepted connection runs a mutual
        HMAC-SHA256 challenge-response over raw bytes (see
        :func:`~repro.replication.transport.connect_tcp`) before either
        side unpickles a frame; a non-loopback *host* **requires** a token
        unless
        ``allow_unauthenticated=True`` explicitly opts out (only for
        networks that are isolated by other means).
        """
        if auth_token is None and not allow_unauthenticated and not _is_loopback(host):
            raise ReplicationError(
                f"refusing to accept unauthenticated followers on {host!r}: "
                "frames are pickles (remote code execution for anyone who "
                "can connect) — pass auth_token=..., or "
                "allow_unauthenticated=True on an otherwise-isolated network"
            )
        with self._lock:
            if self._closed:
                raise ReplicationError("log shipper is closed")
            if self._listener is not None:
                raise ReplicationError("log shipper is already listening")
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((host, port))
            listener.listen(16)
            self._listener = listener
            self._auth_token = auth_token
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="koko-shipper-accept", daemon=True
        )
        self._accept_thread.start()
        return listener.getsockname()[:2]

    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        while True:
            try:
                sock, addr = listener.accept()
            except OSError:
                return  # listener closed
            token = self._auth_token
            if token is not None and not self._authenticate(sock):
                sock.close()
                continue
            try:
                self.serve(TcpTransport(sock, name=f"tcp/{addr[0]}:{addr[1]}"))
            except ReplicationError:  # pragma: no cover - close race
                sock.close()
                return

    def _authenticate(self, sock: socket.socket) -> bool:
        """Challenge one accepted connection; False on mismatch/timeout.

        Runs inline in the accept loop under a short deadline, so one
        stalling dialer delays — but cannot wedge — later accepts.
        """
        try:
            sock.settimeout(5.0)
            if not issue_auth_challenge(sock, self._auth_token):
                return False
            sock.settimeout(None)
            return True
        except (TransportClosed, OSError):
            return False

    # -- retention + observability --------------------------------------
    def _wal_floor(self) -> int | None:
        """The lowest WAL segment id any live, non-stalled session needs."""
        with self._lock:
            sessions = list(self._sessions)
        floors = [s.pin() for s in sessions]
        return min((f for f in floors if f is not None), default=None)

    def _bytes_between(self, start: WalPosition, end: WalPosition) -> int | None:
        """On-disk byte distance from *start* to *end*, or None if unknowable."""
        if start >= end:
            return 0
        total = 0
        for segment_id in range(start.segment_id, end.segment_id + 1):
            path = self.layout.wal_path(segment_id)
            try:
                size = end.offset if segment_id == end.segment_id else path.stat().st_size
            except OSError:
                return None  # segment pruned (stalled follower): lag unknown
            total += size
            if segment_id == start.segment_id:
                total -= min(start.offset, size)
        return max(total, 0)

    def _session_ended(self, session: ShipperSession) -> None:
        with self._lock:
            if session in self._sessions:
                self._sessions.remove(session)

    @property
    def sessions(self) -> list[ShipperSession]:
        """The currently live follower sessions."""
        with self._lock:
            return list(self._sessions)

    def stats(self) -> dict:
        """Shipping stats: primary position plus one entry per session."""
        end = self.service.wal_position()
        return {
            "primary_position": str(end) if end else None,
            "sessions": [session.stats() for session in self.sessions],
        }

    def close(self) -> None:
        """Stop listening, end every session, drop the retention pin."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            listener = self._listener
            self._listener = None
            sessions = list(self._sessions)
        if listener is not None:
            try:
                # closing the fd alone does not wake a thread blocked in
                # accept(); shutdown() does
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:  # pragma: no cover - best-effort
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for session in sessions:
            session.close()
        self.service.unregister_wal_pin(self._wal_floor)
