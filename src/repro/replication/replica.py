"""A read-only follower: snapshot restore + WAL tail application.

A :class:`ReplicaService` connects a transport to a primary's
:class:`~repro.replication.shipper.LogShipper`, restores the shipped
snapshot entirely in memory (zero re-annotation — the snapshot carries
the primary's annotated documents, and shipped WAL records carry
annotated documents too), then applies the streamed records through the
service's existing splice path.  Because routing, sid accounting and
generation stamps replay identically, a caught-up replica returns
**tuple-identical** query results to its primary — including cache
behaviour, since the generation vector mirrors the primary's.

The replica tracks its **replication lag**: the applied WAL position
versus the primary's durable end (positions arrive with every record
batch and heartbeat; the primary also sends its byte-distance
computation, which only it can make — it has the segment files).  The
:class:`~repro.replication.router.ReplicaSet` router uses those to
enforce staleness bounds.

Writes are rejected: :meth:`add_document` / :meth:`remove_document`
raise :class:`~repro.errors.ReplicationError`.  All reads —
:meth:`query`, :meth:`query_batch`, statistics — delegate to the inner
service and run under its usual per-shard read locks, concurrent with
the applier thread's splices.
"""

from __future__ import annotations

import threading
import time

from ..errors import ReplicationError, ServiceError
from ..observability.tracing import Span, TraceContext, new_span_id
from ..persistence import WalPosition, WalRecord, state_from_payloads
from ..service import KokoService
from .transport import TransportClosed

__all__ = ["ReplicaService"]


class ReplicaService:
    """A follower serving read-only queries from shipped primary state.

    Parameters
    ----------
    transport:
        The follower end of a transport connected to a primary's
        :class:`~repro.replication.shipper.LogShipper` (e.g.
        :func:`~repro.replication.transport.connect_tcp`, or the replica
        end of :meth:`InProcessTransport.pair` handed to
        ``shipper.serve``).
    ack_every_records:
        How many applied records may accumulate before an ack is sent
        (an ack is also sent whenever the stream goes idle).
    name:
        Label for diagnostics.
    **service_kwargs:
        Forwarded to the inner :class:`~repro.service.KokoService`
        (cache sizes, ``max_workers``, engine options...).  Must match
        the primary's engine configuration for identical results; the
        defaults do.

    A replica whose transport broke (primary restart, network blip) can
    :meth:`reconnect` with a fresh transport: the primary resumes the
    stream from the replica's applied position when it still can, and
    falls back to shipping a fresh snapshot — transparently rebuilding
    the replica's state — when it cannot (position lost to a primary
    crash, or segments pruned past a stalled follower).
    """

    def __init__(
        self,
        transport,
        ack_every_records: int = 64,
        name: str = "replica",
        **service_kwargs,
    ) -> None:
        self._transport = transport
        self.name = name
        self._ack_every_records = ack_every_records
        self._service_kwargs = dict(service_kwargs)
        self._lock = threading.Lock()
        self._applied: WalPosition | None = None
        self._primary_end: WalPosition | None = None
        self._lag_bytes: int | None = None
        self._clock_offset: float | None = None
        self._records_applied = 0
        self._connected = False
        self._restart_requested = False
        self._error: str | None = None
        self._closed = False
        self._bootstrap_checkpoint_id: int | None = None
        self._bootstrap_seconds = 0.0

        bootstrap_started = time.perf_counter()
        try:
            mode, start, state = self._handshake(transport, resume=None)
            if mode != "snapshot" or state is None:
                raise ReplicationError(
                    f"{name}: primary answered a fresh subscription with "
                    f"{mode!r} instead of a snapshot bootstrap"
                )
            self.service = KokoService(bootstrap_snapshot=state, **service_kwargs)
        except BaseException:
            # a half-constructed replica has no close(): shut the channel
            # here so the primary's session ends instead of leaking
            try:
                transport.close()
            except Exception:  # pragma: no cover - best-effort
                pass
            raise
        self._bootstrap_checkpoint_id = state.checkpoint_id
        self._bootstrap_seconds = time.perf_counter() - bootstrap_started
        self._register_metrics()
        with self._lock:
            self._applied = start
            self._connected = True
        self._applier = threading.Thread(
            target=self._apply_loop,
            args=(transport,),
            name=f"koko-{name}-applier",
            daemon=True,
        )
        self._applier.start()

    def _register_metrics(self) -> None:
        """Expose replication state in the inner service's registry.

        Called after every inner-service (re)build, so the gauges always
        live in the registry ``self.service.metrics`` currently returns.
        Lag and connectivity are callback gauges — they read the live
        properties at scrape time rather than being pushed.
        """
        registry = self.service.stats.registry
        connected = registry.gauge(
            "koko_replication_connected",
            "1 while the applier is attached to a live shipping session.",
        )
        connected.set_function(lambda: 1.0 if self.connected else 0.0)
        lag = registry.gauge(
            "koko_replication_lag_bytes",
            "Byte distance behind the primary's durable end (-1 = unknown).",
        )
        lag.set_function(
            lambda: float(self.lag_bytes) if self.lag_bytes is not None else -1.0
        )
        applied = registry.gauge(
            "koko_replication_records_applied",
            "Shipped WAL records applied since this replica bootstrapped.",
        )
        applied.set_function(lambda: float(self.records_applied))
        bootstrap = registry.gauge(
            "koko_replication_bootstrap_seconds",
            "Wall-clock of the last snapshot bootstrap (handshake to ready).",
        )
        bootstrap.set(self._bootstrap_seconds)
        self._apply_hist = registry.histogram(
            "koko_replication_apply_seconds",
            "Per-record apply wall-clock (power-of-two buckets).",
        )

    def _handshake(self, transport, resume: WalPosition | None):
        """Subscribe and read the hello (+ snapshot, when bootstrapping)."""
        transport.send(("subscribe", {"resume": resume}))
        hello = transport.recv(timeout=60.0)
        if hello is None or hello[0] != "hello":
            raise ReplicationError(f"{self.name}: expected hello, got {hello!r}")
        mode = hello[1]["mode"]
        start: WalPosition = hello[1]["start"]
        state = None
        if mode == "snapshot":
            snapshot_msg = transport.recv(timeout=600.0)
            if snapshot_msg is None or snapshot_msg[0] != "snapshot":
                raise ReplicationError(
                    f"{self.name}: expected snapshot payload, got {snapshot_msg!r}"
                )
            state = state_from_payloads(
                snapshot_msg[1]["manifest"], snapshot_msg[1]["files"]
            )
        return mode, start, state

    def reconnect(self, transport) -> bool:
        """Re-attach a disconnected replica through a fresh transport.

        Offers the primary the replica's applied position; on a granted
        resume the existing in-memory state keeps serving and the stream
        continues where it left off (returns True).  Otherwise the primary
        ships a fresh snapshot and the replica **rebuilds** (returns
        False) — reads racing the swap are retried once against the
        replacement by :meth:`query`.  Raises :class:`ReplicationError`
        when called while still connected.
        """
        if self.connected:
            raise ReplicationError(f"{self.name} is still connected")
        if self._closed:
            raise ReplicationError(f"{self.name} is closed")
        if self._applier.is_alive():  # let the old applier finish dying
            self._applier.join(timeout=5.0)
        try:
            mode, start, state = self._handshake(
                transport, resume=self.applied_position
            )
            if mode not in ("resume", "snapshot") or (
                mode == "snapshot" and state is None
            ):
                raise ReplicationError(
                    f"{self.name}: unexpected reconnect handshake mode {mode!r}"
                )
            resumed = mode == "resume"
            replacement = (
                None
                if resumed
                else KokoService(bootstrap_snapshot=state, **self._service_kwargs)
            )
        except BaseException:
            # the replica keeps its old (disconnected) state; the caller
            # may retry, but this transport is dead either way — close it
            # so the primary's session ends instead of leaking
            try:
                transport.close()
            except Exception:  # pragma: no cover - best-effort
                pass
            raise
        if replacement is not None:
            previous, self.service = self.service, replacement
            self._bootstrap_checkpoint_id = state.checkpoint_id
            previous.close()
        # rebind the gauges/histogram: a rebuild swapped in a fresh inner
        # service (and registry); a resume makes this a no-op re-register
        self._register_metrics()
        old_transport, self._transport = self._transport, transport
        try:
            old_transport.close()
        except Exception:  # pragma: no cover - best-effort
            pass
        with self._lock:
            if not resumed:
                self._applied = start
            self._primary_end = None
            self._lag_bytes = None
            self._restart_requested = False
            self._error = None
            self._connected = True
        self._applier = threading.Thread(
            target=self._apply_loop,
            args=(transport,),
            name=f"koko-{self.name}-applier",
            daemon=True,
        )
        self._applier.start()
        return resumed

    # ------------------------------------------------------------------
    # the applier
    # ------------------------------------------------------------------
    def _apply_loop(self, transport) -> None:
        """Drain *transport* (this incarnation's own — a reconnect starts a
        fresh loop on a fresh transport) and apply shipped records."""
        unacked = 0
        try:
            while True:
                message = transport.recv(timeout=0.5)
                if message is None:
                    if unacked:
                        unacked = self._send_ack(transport)
                    continue
                kind = message[0]
                if kind == "records":
                    _, batch, primary_end = message
                    for position, payload in batch:
                        record = WalRecord.from_payload(payload)
                        apply_started = time.perf_counter()
                        self.service.apply_replicated(record)
                        apply_seconds = time.perf_counter() - apply_started
                        self._apply_hist.observe(apply_seconds)
                        trace = getattr(record, "trace", None)
                        if trace is not None and trace.sampled:
                            self._record_apply_trace(record, apply_seconds)
                        with self._lock:
                            self._applied = position
                            self._records_applied += 1
                        unacked += 1
                        if unacked >= self._ack_every_records:
                            unacked = self._send_ack(transport)
                    self._note_primary_end(primary_end)
                elif kind == "heartbeat":
                    info = message[1]
                    self._note_primary_end(
                        info.get("end"),
                        info.get("lag_bytes"),
                        info.get("sent_unix"),
                    )
                    # always ack: an idle-but-caught-up follower must keep
                    # refreshing its liveness (and its WAL retention pin)
                    unacked = self._send_ack(transport)
                elif kind == "restart":
                    with self._lock:
                        self._restart_requested = True
                        self._error = message[1].get("reason")
                    return
        except TransportClosed:
            pass
        except Exception as exc:
            with self._lock:
                self._error = repr(exc)
        finally:
            with self._lock:
                self._connected = False
            # a dead applier means a dead connection: closing the channel
            # ends the primary's session instead of letting it ship into
            # a queue nobody drains
            try:
                transport.close()
            except Exception:  # pragma: no cover - best-effort
                pass

    def _record_apply_trace(self, record: WalRecord, seconds: float) -> None:
        """Record a ``replica.apply`` fragment joining the ingest's trace.

        The shipped record's WAL metadata carries the originating
        :class:`~repro.observability.tracing.TraceContext`; the apply
        span parents under that metadata span, so cluster assembly shows
        client call → primary splice/fsync → ship → this apply as one
        tree spanning both nodes.
        """
        trace = record.trace
        store = getattr(self.service, "trace_store", None)
        if trace is None or store is None:
            return
        span = Span.completed(
            "replica.apply",
            seconds,
            op=record.op,
            doc_id=record.doc_id,
        )
        context = TraceContext(
            trace_id=trace.trace_id, span_id=new_span_id(), sampled=True
        )
        store.record(
            context,
            span,
            parent_span_id=trace.span_id,
            kind="apply",
            node=self.name,
        )

    def _send_ack(self, transport) -> int:
        applied = self.applied_position
        if applied is not None:
            transport.send(("ack", applied))
        return 0

    def _note_primary_end(self, end, lag_bytes=None, sent_unix=None) -> None:
        with self._lock:
            if end is not None and (
                self._primary_end is None or end > self._primary_end
            ):
                self._primary_end = end
            if lag_bytes is not None:
                self._lag_bytes = lag_bytes
            elif (
                self._applied is not None
                and self._primary_end is not None
                and self._applied >= self._primary_end
            ):
                self._lag_bytes = 0
            if sent_unix is not None:
                # estimated wall-clock skew versus the primary: our receive
                # time minus the primary's send time (includes one-way
                # network delay, good enough for trace alignment)
                self._clock_offset = time.time() - sent_unix

    # ------------------------------------------------------------------
    # replication state
    # ------------------------------------------------------------------
    @property
    def applied_position(self) -> WalPosition | None:
        """The log position of the last applied record."""
        with self._lock:
            return self._applied

    @property
    def primary_position(self) -> WalPosition | None:
        """The primary's durable end, as last reported to this replica."""
        with self._lock:
            return self._primary_end

    @property
    def lag_bytes(self) -> int | None:
        """Byte distance behind the primary (0 = caught up; None = unknown).

        Exact 0 when the applied position has reached the last reported
        primary end; otherwise the primary-computed byte distance from the
        latest heartbeat.
        """
        with self._lock:
            if (
                self._applied is not None
                and self._primary_end is not None
                and self._applied >= self._primary_end
            ):
                return 0
            return self._lag_bytes

    @property
    def connected(self) -> bool:
        """True while the applier is attached to a live session."""
        with self._lock:
            return self._connected

    @property
    def restart_requested(self) -> bool:
        """True when the primary told this replica to re-bootstrap."""
        with self._lock:
            return self._restart_requested

    @property
    def records_applied(self) -> int:
        """Total shipped records applied since this replica bootstrapped."""
        with self._lock:
            return self._records_applied

    @property
    def clock_offset_seconds(self) -> float | None:
        """Estimated wall-clock skew versus the primary (replica − primary).

        Derived from the ``sent_unix`` stamp on shipping heartbeats;
        ``None`` until the first heartbeat lands.  ``ClusterTelemetry``
        subtracts this from the replica's fragment timestamps when
        assembling a cross-node trace.
        """
        with self._lock:
            return self._clock_offset

    def caught_up_to(self, token: WalPosition | None) -> bool:
        """True when every write at or before *token* has been applied."""
        if token is None:
            return True
        applied = self.applied_position
        return applied is not None and applied >= token

    def wait_caught_up(
        self, token: WalPosition | None = None, timeout: float = 30.0
    ) -> bool:
        """Poll until :meth:`caught_up_to` *token* (default: the primary end
        last reported) or *timeout*; returns the final caught-up verdict.

        False when the target is unknown — a replica that never learned
        the primary's end (disconnected before the first batch or
        heartbeat) must not report itself in sync.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            target = token if token is not None else self.primary_position
            if target is not None and self.caught_up_to(target):
                return True
            if not self.connected:
                break
            time.sleep(0.01)
        target = token if token is not None else self.primary_position
        return target is not None and self.caught_up_to(target)

    def replication_stats(self) -> dict:
        """Lag and apply counters, in the shape operators monitor."""
        lag = self.lag_bytes  # property: exact 0 when caught up
        with self._lock:
            return {
                "name": self.name,
                "connected": self._connected,
                "restart_requested": self._restart_requested,
                "applied_position": str(self._applied) if self._applied else None,
                "primary_position": (
                    str(self._primary_end) if self._primary_end else None
                ),
                "lag_bytes": lag,
                "records_applied": self._records_applied,
                "bootstrap_checkpoint_id": self._bootstrap_checkpoint_id,
                "clock_offset_seconds": self._clock_offset,
                "error": self._error,
            }

    # ------------------------------------------------------------------
    # the read-only service surface
    # ------------------------------------------------------------------
    def query(self, query, **kwargs):
        """Evaluate one query against the replica's current state.

        Identical semantics to :meth:`KokoService.query` — same caches,
        same per-shard read locks, tuple-identical results when caught up
        with the primary.  A read racing a :meth:`reconnect` rebuild (the
        old inner service closes as the replacement swaps in) is retried
        once against the replacement.
        """
        service = self.service
        try:
            return service.query(query, **kwargs)
        except ServiceError:
            if service is not self.service:  # lost the race with a rebuild
                return self.service.query(query, **kwargs)
            raise

    def query_batch(self, queries, **kwargs):
        """Concurrent batch evaluation (see :meth:`KokoService.query_batch`)."""
        service = self.service
        try:
            return service.query_batch(queries, **kwargs)
        except ServiceError:
            if service is not self.service:
                return self.service.query_batch(queries, **kwargs)
            raise

    def add_document(self, *args, **kwargs):
        """Replicas are read-only: raises :class:`ReplicationError`."""
        raise ReplicationError(f"{self.name} is a read-only replica")

    def add_documents(self, *args, **kwargs):
        """Replicas are read-only: raises :class:`ReplicationError`."""
        raise ReplicationError(f"{self.name} is a read-only replica")

    def remove_document(self, *args, **kwargs):
        """Replicas are read-only: raises :class:`ReplicationError`."""
        raise ReplicationError(f"{self.name} is a read-only replica")

    @property
    def stats(self):
        """The inner service's :class:`~repro.service.stats.ServiceStats`."""
        return self.service.stats

    @property
    def metrics(self):
        """The inner service's registry — service metrics *and* the
        replication gauges registered by :meth:`_register_metrics`."""
        return self.service.metrics

    def statistics(self):
        """Merged :class:`~repro.indexing.koko_index.IndexStatistics`."""
        return self.service.statistics()

    def document_ids(self) -> list[str]:
        """Ids of every document currently applied on this replica."""
        return self.service.document_ids()

    @property
    def generations(self) -> tuple[int, ...]:
        """Per-shard generation stamps (mirror the primary's when caught up)."""
        return self.service.generations

    @property
    def shard_count(self) -> int:
        """Number of shards (always the primary's topology)."""
        return self.service.shard_count

    def __len__(self) -> int:
        return len(self.service)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run (telemetry liveness probe)."""
        return self._closed

    def close(self) -> None:
        """Detach from the primary and shut the inner service down."""
        if self._closed:
            return
        self._closed = True
        try:
            self._transport.close()
        except Exception:  # pragma: no cover - best-effort
            pass
        if self._applier.is_alive():
            self._applier.join(timeout=5.0)
        self.service.close()

    def __enter__(self) -> "ReplicaService":
        """Context-manager entry: the replica itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ReplicaService(name={self.name!r}, documents={len(self)}, "
            f"applied={self.applied_position}, connected={self.connected})"
        )
