"""Read replication: WAL log shipping, follower catch-up, replica routing.

The scale-out read path over the durability subsystem:

* **shipping** (:mod:`.shipper`) — a primary-side
  :class:`~repro.replication.shipper.LogShipper` streams snapshot
  bootstrap + WAL tail to any number of followers, coordinating with
  checkpoint rotation through WAL retention pins;
* **transports** (:mod:`.transport`) — an in-process queue pair and a
  TCP socket transport behind one message interface;
* **replicas** (:mod:`.replica`) — a
  :class:`~repro.replication.replica.ReplicaService` restores the
  shipped snapshot, tails the log through the service's existing splice
  path (zero re-annotation) and serves read-only queries with a tracked
  replication lag;
* **routing** (:mod:`.router`) — a
  :class:`~repro.replication.router.ReplicaSet` fans ``query()`` across
  primary + replicas with read-your-writes offset tokens, bounded
  staleness and failover.
"""

from ..persistence import WalPosition
from .replica import ReplicaService
from .router import ReplicaSet, ReplicaSetStats
from .shipper import LogShipper, ShipperSession
from .transport import InProcessTransport, TcpTransport, TransportClosed, connect_tcp

__all__ = [
    "InProcessTransport",
    "LogShipper",
    "ReplicaService",
    "ReplicaSet",
    "ReplicaSetStats",
    "ShipperSession",
    "TcpTransport",
    "TransportClosed",
    "WalPosition",
    "connect_tcp",
]
