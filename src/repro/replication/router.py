"""A replica-aware query router: primary + N replicas behind one ``query()``.

:class:`ReplicaSet` fans read traffic across a primary
:class:`~repro.service.KokoService` and any number of read-only
followers, with the staleness controls a replicated read path needs:

* **round-robin** across healthy, sufficiently-fresh replicas (the
  primary serves whatever the replicas cannot);
* **read-your-writes** — :meth:`add_document` / :meth:`remove_document`
  return the primary's durable WAL position as an *offset token*; a
  query carrying ``read_your_writes=token`` is only routed to replicas
  whose applied position has reached the token (else the primary serves
  it);
* **bounded staleness** — ``max_lag_bytes`` (per router or per query)
  rejects replicas whose byte lag behind the primary exceeds the bound;
* **failover** — a replica that disconnected, whose applier died, that
  was told to re-bootstrap, or that has made no apply progress for
  ``failover_seconds`` while the primary advanced, stops receiving
  queries; a replica that raises mid-query is skipped, the query is
  re-routed (ultimately to the primary, which always answers), and the
  failed replica is benched for ``suspend_seconds`` — apply progress
  rehabilitates it sooner, and on a write-idle primary the bench simply
  expires, so one transient error never removes a replica for good.

The router is synchronous and in-process: it holds direct references to
the replica objects.  Cross-process read scaling runs one router (or a
bare replica) per process — see ``benchmarks/bench_replication.py``.
"""

from __future__ import annotations

import threading
import time

from ..errors import KokoSemanticError, KokoSyntaxError
from ..observability.metrics import MetricsRegistry
from ..persistence import WalPosition

__all__ = ["ReplicaSet", "ReplicaSetStats"]

_UNSET = object()


class ReplicaSetStats:
    """Routing counters for one :class:`ReplicaSet`, registry-backed.

    Counters live in *registry* (the primary's, when the router can reach
    one — so ``primary.metrics.render_text()`` includes routing traffic);
    the pre-registry attribute API (``primary_queries``,
    ``replica_queries``, the rejection counts, ``failovers``) is preserved
    as read-only properties and :meth:`snapshot` keeps its exact shape.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._primary = self.registry.counter(
            "koko_router_primary_queries_total",
            "Queries the router served from the primary.",
        )
        self._replica = self.registry.counter(
            "koko_router_replica_queries_total",
            "Queries the router served per replica.",
            labelnames=("replica",),
        )
        self._rejections = self.registry.counter(
            "koko_router_rejections_total",
            "Replicas skipped per staleness/health reason.",
            labelnames=("reason",),
        )
        self._failovers = self.registry.counter(
            "koko_router_failovers_total",
            "Replicas that failed mid-query and were routed around.",
        )

    def record_primary(self) -> None:
        """Account one query served by the primary."""
        self._primary.inc()

    def record_replica(self, name: str) -> None:
        """Account one query served by replica *name*."""
        self._replica.labels(name).inc()

    def record_rejection(self, kind: str) -> None:
        """Account one replica skipped for staleness/health (*kind*)."""
        if kind not in ("read_your_writes", "lag"):
            kind = "health"
        self._rejections.labels(kind).inc()

    def record_failover(self) -> None:
        """Account one replica that failed mid-query and was routed around."""
        self._failovers.inc()

    @property
    def primary_queries(self) -> int:
        """Queries served by the primary."""
        return self._primary.value

    @property
    def replica_queries(self) -> dict[str, int]:
        """Per-replica served-query counts."""
        return dict(self._replica.values())

    @property
    def read_your_writes_rejections(self) -> int:
        """Replicas skipped for not having applied a read-your-writes token."""
        return self._rejections.values().get("read_your_writes", 0)

    @property
    def lag_rejections(self) -> int:
        """Replicas skipped for exceeding the byte-lag bound."""
        return self._rejections.values().get("lag", 0)

    @property
    def health_rejections(self) -> int:
        """Replicas skipped as disconnected, restarting, benched or stuck."""
        return self._rejections.values().get("health", 0)

    @property
    def failovers(self) -> int:
        """Replicas that raised mid-query and were routed around."""
        return self._failovers.value

    def snapshot(self) -> dict:
        """A point-in-time dict of every routing counter."""
        rejections = self._rejections.values()
        return {
            "primary_queries": self._primary.value,
            "replica_queries": dict(self._replica.values()),
            "read_your_writes_rejections": rejections.get("read_your_writes", 0),
            "lag_rejections": rejections.get("lag", 0),
            "health_rejections": rejections.get("health", 0),
            "failovers": self._failovers.value,
        }


class _ReplicaHealth:
    """Progress tracking for failover decisions."""

    def __init__(self) -> None:
        self.last_applied: WalPosition | None = None
        self.last_progress_monotonic = time.monotonic()
        self.suspended_until = 0.0  # monotonic deadline; 0 = not benched


class ReplicaSet:
    """Routes reads across a primary and its replicas; writes to the primary.

    Parameters
    ----------
    primary:
        The writable :class:`~repro.service.KokoService`.
    replicas:
        Initial read-only followers (more can join via :meth:`add_replica`).
    max_lag_bytes:
        Default staleness bound: replicas lagging more than this many
        bytes behind the primary's durable end are not routed to.
        ``None`` (default) accepts any lag.
    failover_seconds:
        A replica whose applied position has not advanced for this long —
        while the primary's log end is ahead of it — is considered stuck
        ("stopped acking") and taken out of rotation until it progresses
        again.
    suspend_seconds:
        How long a replica that raised mid-query stays benched.  Apply
        progress lifts the bench early; otherwise it expires on its own,
        so a transient failure on a write-idle primary (where the applied
        position never moves) cannot bench a replica permanently.
    """

    def __init__(
        self,
        primary,
        replicas=(),
        max_lag_bytes: int | None = None,
        failover_seconds: float = 5.0,
        suspend_seconds: float = 1.0,
    ) -> None:
        self.primary = primary
        self.max_lag_bytes = max_lag_bytes
        self.failover_seconds = failover_seconds
        self.suspend_seconds = suspend_seconds
        # routing counters join the primary's registry when it has one, so
        # the primary's exposition covers the whole replicated read path
        self.stats = ReplicaSetStats(
            registry=getattr(getattr(primary, "stats", None), "registry", None)
        )
        self._lock = threading.Lock()
        self._replicas: list = []
        self._health: dict[int, _ReplicaHealth] = {}
        self._rr = 0
        self._health_source = None
        for replica in replicas:
            self.add_replica(replica)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_replica(self, replica) -> None:
        """Put *replica* into the read rotation."""
        with self._lock:
            if replica not in self._replicas:
                self._replicas.append(replica)
                self._health[id(replica)] = _ReplicaHealth()

    def remove_replica(self, replica) -> None:
        """Take *replica* out of the rotation (idempotent; does not close it)."""
        with self._lock:
            if replica in self._replicas:
                self._replicas.remove(replica)
                self._health.pop(id(replica), None)

    @property
    def replicas(self) -> list:
        """The replicas currently in rotation."""
        with self._lock:
            return list(self._replicas)

    # ------------------------------------------------------------------
    # writes (primary only) — return offset tokens
    # ------------------------------------------------------------------
    def add_document(self, text: str, doc_id: str | None = None, **kwargs):
        """Ingest through the primary; returns ``(document, token)``.

        The token is the primary's durable WAL position *after* the add —
        pass it to :meth:`query` as ``read_your_writes`` to guarantee the
        answering node has applied this write.  ``None`` on a memory-only
        primary (which cannot replicate anyway).
        """
        document = self.primary.add_document(text, doc_id=doc_id, **kwargs)
        return document, self.primary.wal_position()

    def add_documents(self, texts, doc_ids=None, **kwargs):
        """Bulk ingest through the primary; returns ``(documents, token)``.

        One read-your-writes token covers the whole batch (the primary's
        durable position after the last document) — querying with it
        guarantees the answering node has applied every document of the
        batch.  Keyword arguments (``batch_size``, ``wait_durable``)
        forward to :meth:`KokoService.add_documents`.
        """
        documents = self.primary.add_documents(texts, doc_ids=doc_ids, **kwargs)
        return documents, self.primary.wal_position()

    def remove_document(self, doc_id: str, **kwargs):
        """Remove through the primary; returns ``(document, token)``.

        Keyword arguments (``trace_context``, ``client_id``) forward to
        :meth:`KokoService.remove_document`.
        """
        document = self.primary.remove_document(doc_id, **kwargs)
        return document, self.primary.wal_position()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def query(
        self,
        query,
        read_your_writes: WalPosition | None = None,
        max_lag_bytes=_UNSET,
        prefer_primary: bool = False,
        **kwargs,
    ):
        """Evaluate one query on the freshest-eligible node.

        Parameters
        ----------
        query:
            Query text (or pre-parsed/compiled form), as
            :meth:`KokoService.query` accepts.
        read_your_writes:
            An offset token from :meth:`add_document` /
            :meth:`remove_document`: only replicas that have applied up to
            the token are eligible (the primary trivially is).
        max_lag_bytes:
            Per-query override of the router's staleness bound.
        prefer_primary:
            Route to the primary outright (diagnostics; strongest
            consistency).
        **kwargs:
            Forwarded to the serving node's ``query``.
        """
        if not prefer_primary:
            bound = self.max_lag_bytes if max_lag_bytes is _UNSET else max_lag_bytes
            for replica in self._eligible(read_your_writes, bound):
                try:
                    result = replica.query(query, **kwargs)
                except (KokoSyntaxError, KokoSemanticError):
                    raise  # the query's fault — every node would refuse it
                except Exception:
                    self.stats.record_failover()
                    self._suspend(replica)
                    continue
                self.stats.record_replica(getattr(replica, "name", repr(replica)))
                return result
        self.stats.record_primary()
        return self.primary.query(query, **kwargs)

    def query_batch(self, queries, **kwargs) -> list:
        """Route a batch query-by-query (each picks the next eligible node)."""
        return [self.query(query, **kwargs) for query in queries]

    def _eligible(self, token: WalPosition | None, max_lag: int | None):
        """Replicas fit to serve, round-robin rotated, staleness-checked."""
        with self._lock:
            replicas = list(self._replicas)
            start = self._rr
            self._rr += 1
        count = len(replicas)
        for index in range(count):
            replica = replicas[(start + index) % count]
            if not self._healthy(replica):
                self.stats.record_rejection("health")
                continue
            if token is not None and not replica.caught_up_to(token):
                self.stats.record_rejection("read_your_writes")
                continue
            if max_lag is not None:
                lag = replica.lag_bytes
                if lag is None:
                    lag = self._scraped_lag(replica)
                if lag is None or lag > max_lag:
                    self.stats.record_rejection("lag")
                    continue
            yield replica

    def _healthy(self, replica) -> bool:
        """Connected, applying, not told to re-bootstrap, not stuck."""
        if (
            not replica.connected
            or replica.restart_requested
        ):
            return False
        if not self._scraped_ready(replica):
            return False
        health = self._health.get(id(replica))
        if health is None:  # pragma: no cover - removed concurrently
            return False
        now = time.monotonic()
        applied = replica.applied_position
        with self._lock:
            if applied != health.last_applied:
                health.last_applied = applied
                health.last_progress_monotonic = now
                health.suspended_until = 0.0  # progress lifts the bench early
            if now < health.suspended_until:
                return False
            primary_end = self.primary.wal_position()
            behind = (
                primary_end is not None
                and (applied is None or applied < primary_end)
            )
            if behind and now - health.last_progress_monotonic > self.failover_seconds:
                return False  # stopped acking while the primary advanced
        return True

    def _suspend(self, replica) -> None:
        """Bench a replica that failed a query for ``suspend_seconds``
        (apply progress lifts the bench early)."""
        with self._lock:
            health = self._health.get(id(replica))
            if health is not None:
                health.suspended_until = time.monotonic() + self.suspend_seconds

    # ------------------------------------------------------------------
    # scraped health (ClusterTelemetry integration)
    # ------------------------------------------------------------------
    def attach_health_source(self, source) -> None:
        """Feed scraped telemetry into routing decisions.

        *source* is anything with a ``replica_health(name) -> dict | None``
        method — in practice a
        :class:`~repro.observability.exposition.ClusterTelemetry` scraping
        the replicas' ``/stats`` + ``/readyz`` endpoints.  Once attached:

        * a replica whose latest scrape says ``ready`` is ``False`` is
          treated as unhealthy (out-of-process signals — a wedged
          checkpoint, a stalled WAL — that in-process checks cannot see);
        * when a replica's in-process ``lag_bytes`` is still unknown, the
          scraped lag stands in for the ``max_lag_bytes`` staleness check.

        Pass ``None`` to detach.  Replicas with no scrape data yet are
        unaffected — the source only ever *adds* evidence.
        """
        self._health_source = source

    def _scraped_view(self, replica) -> dict | None:
        """The health source's latest view of *replica*, if any."""
        source = self._health_source
        if source is None:
            return None
        name = getattr(replica, "name", None)
        if name is None:
            return None
        try:
            return source.replica_health(name)
        except Exception:  # pragma: no cover - defensive
            return None

    def _scraped_ready(self, replica) -> bool:
        """False only when a successful scrape reports the replica unready."""
        view = self._scraped_view(replica)
        if view is None or not view.get("scrape_ok"):
            return True  # no evidence against it
        return bool(view.get("ready", True))

    def _scraped_lag(self, replica) -> int | None:
        """The scraped ``lag_bytes`` for *replica* (None when unknown)."""
        view = self._scraped_view(replica)
        if view is None or not view.get("scrape_ok"):
            return None
        lag = view.get("lag_bytes")
        return int(lag) if lag is not None else None

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> MetricsRegistry:
        """The registry holding the routing counters.

        The primary's registry when the router could join it (the usual
        case), else the router's own private one.
        """
        return self.stats.registry

    def routing_stats(self) -> dict:
        """Routing counters plus each member's replication state."""
        members = []
        for replica in self.replicas:
            describe = getattr(replica, "replication_stats", None)
            members.append(describe() if describe else repr(replica))
        return {
            "routing": self.stats.snapshot(),
            "replicas": members,
            "primary_position": (
                str(self.primary.wal_position())
                if self.primary.wal_position() is not None
                else None
            ),
        }

    def __len__(self) -> int:
        """Number of replicas currently in rotation."""
        return len(self.replicas)
