"""Table 2 — KOKO execution-time breakdown on increasing wiki corpora.

The three Section 6.3 queries (Chocolate: low selectivity, Title: medium,
DateOfBirth: high) run over wiki-style corpora of increasing size; for each
run the per-stage timings (Normalize, DPLI, LoadArticle, GSP, extract,
satisfying) and the selectivity are recorded.  Expected shape: total time
grows roughly linearly with the number of articles; Normalize + GSP are a
negligible share; higher-selectivity queries spend relatively more time in
extract/satisfying and less (proportionally) in index lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...corpora.wikipedia import generate_wikipedia_corpus
from ...koko.engine import KokoEngine
from ...nlp.pipeline import Pipeline
from ...nlp.types import Corpus
from ..queries import SCALEUP_QUERIES
from ..reporting import format_table


@dataclass
class ScaleupRow:
    """One (query, corpus size) row of Table 2."""

    query: str
    articles: int
    selectivity: float
    timings: dict[str, float] = field(default_factory=dict)
    tuples: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(self.timings.values())


@dataclass
class ScaleupResult:
    rows: list[ScaleupRow] = field(default_factory=list)

    def rows_for(self, query: str) -> list[ScaleupRow]:
        return sorted(
            (row for row in self.rows if row.query == query),
            key=lambda row: row.articles,
        )

    def total_series(self, query: str) -> list[tuple[int, float]]:
        return [(row.articles, row.total_seconds) for row in self.rows_for(query)]


def run(
    article_counts: tuple[int, ...] = (50, 100, 200),
    queries: dict[str, str] | None = None,
) -> ScaleupResult:
    """Run the three queries at every corpus size."""
    queries = queries or SCALEUP_QUERIES
    pipeline = Pipeline()
    result = ScaleupResult()
    largest = generate_wikipedia_corpus(articles=max(article_counts), pipeline=pipeline)
    for articles in article_counts:
        corpus = _prefix(largest, articles)
        engine = KokoEngine(corpus)
        for name, query_text in queries.items():
            outcome = engine.execute(query_text)
            docs_with_extractions = len(outcome.selectivity)
            result.rows.append(
                ScaleupRow(
                    query=name,
                    articles=articles,
                    selectivity=docs_with_extractions / max(1, len(corpus)),
                    timings=outcome.timings.as_dict(),
                    tuples=len(outcome),
                )
            )
    return result


def _prefix(corpus: Corpus, articles: int) -> Corpus:
    prefix = Corpus(name=f"{corpus.name}-{articles}")
    prefix.documents = corpus.documents[:articles]
    prefix.gold = corpus.gold
    return prefix


def format_result(result: ScaleupResult) -> str:
    rows = []
    for row in sorted(result.rows, key=lambda r: (r.query, r.articles)):
        rows.append(
            (
                row.query,
                row.articles,
                row.selectivity,
                row.timings.get("Normalize", 0.0),
                row.timings.get("DPLI", 0.0),
                row.timings.get("LoadArticle", 0.0),
                row.timings.get("GSP", 0.0),
                row.timings.get("extract", 0.0),
                row.timings.get("satisfying", 0.0),
                row.total_seconds,
            )
        )
    return format_table(
        [
            "query", "articles", "selectivity", "Normalize", "DPLI",
            "LoadArticle", "GSP", "extract", "satisfying", "total",
        ],
        rows,
        title="Table 2 — KOKO execution time breakdown (seconds)",
        float_digits=4,
    )
