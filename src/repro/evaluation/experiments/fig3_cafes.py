"""Figure 3 — extracting cafe names with KOKO, IKE and CRFsuite.

Reproduces the precision / recall / F1-vs-threshold curves on the
BARISTAMAG-like and SPRUDGE-like corpora.  Expected shape (not absolute
numbers): KOKO's F1 exceeds IKE's and CRF's across thresholds, with its best
F1 at a mid-range threshold, because only KOKO aggregates partial evidence
from multiple mentions of the same cafe across a document.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...corpora.cafe_blogs import BARISTAMAG, SPRUDGE, CafeBlogConfig, generate_cafe_corpus
from ...koko.engine import KokoEngine
from ...nlp.pipeline import Pipeline
from ..extraction_quality import (
    DEFAULT_THRESHOLDS,
    ThresholdSweep,
    crf_sweep,
    ike_sweep,
    koko_threshold_sweep,
)
from ..queries import CAFE_IKE_PATTERNS, CAFE_QUERY
from ..reporting import format_table


@dataclass
class CafeExperimentResult:
    """Sweeps per corpus per system."""

    sweeps: dict[str, dict[str, ThresholdSweep]] = field(default_factory=dict)
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS

    def best_f1(self, corpus_name: str, system: str) -> float:
        return self.sweeps[corpus_name][system].best_f1()


def run(
    baristamag_articles: int = 30,
    sprudge_articles: int = 60,
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
    crf_epochs: int = 3,
    include_crf: bool = True,
) -> CafeExperimentResult:
    """Run the Figure 3 experiment on freshly generated cafe corpora."""
    pipeline = Pipeline()
    result = CafeExperimentResult(thresholds=thresholds)
    configs: list[tuple[CafeBlogConfig, int]] = [
        (BARISTAMAG, baristamag_articles),
        (SPRUDGE, sprudge_articles),
    ]
    for config, articles in configs:
        corpus = generate_cafe_corpus(config, pipeline=pipeline, articles=articles)
        engine = KokoEngine(corpus)
        sweeps: dict[str, ThresholdSweep] = {}
        sweeps["KOKO"] = koko_threshold_sweep(
            engine, CAFE_QUERY, corpus, gold_key="cafe", thresholds=thresholds
        )
        sweeps["IKE"] = ike_sweep(
            corpus, CAFE_IKE_PATTERNS, gold_key="cafe", thresholds=thresholds
        )
        if include_crf:
            sweeps["CRFsuite"] = crf_sweep(
                corpus, gold_key="cafe", thresholds=thresholds, epochs=crf_epochs
            )
        result.sweeps[config.name] = sweeps
    return result


def format_result(result: CafeExperimentResult) -> str:
    """Render the figure as threshold-indexed P/R/F1 tables per corpus."""
    blocks = []
    for corpus_name, sweeps in result.sweeps.items():
        rows = []
        for system, sweep in sweeps.items():
            for threshold, score in zip(sweep.thresholds, sweep.scores):
                rows.append(
                    (system, threshold, score.precision, score.recall, score.f1)
                )
        blocks.append(
            format_table(
                ["system", "threshold", "precision", "recall", "F1"],
                rows,
                title=f"Figure 3 — cafe extraction on {corpus_name}",
            )
        )
    return "\n\n".join(blocks)
