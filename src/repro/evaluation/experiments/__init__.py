"""One module per reproduced table / figure of the paper's evaluation."""

from . import (
    fig3_cafes,
    fig4_wnut,
    fig5_descriptors,
    fig6_index_construction,
    fig7_happydb_index,
    fig8_wikipedia_index,
    index_performance,
    nell_comparison,
    odin_comparison,
    table1_gsp,
    table2_scaleup,
)

__all__ = [
    "fig3_cafes",
    "fig4_wnut",
    "fig5_descriptors",
    "fig6_index_construction",
    "fig7_happydb_index",
    "fig8_wikipedia_index",
    "index_performance",
    "nell_comparison",
    "odin_comparison",
    "table1_gsp",
    "table2_scaleup",
]
