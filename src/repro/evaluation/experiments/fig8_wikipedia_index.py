"""Figure 8 — index performance on the Wikipedia-like corpus.

Same protocol as Figure 7 over wiki-style articles; the article counts sweep
stands in for the paper's 5K-100K article sweep.
"""

from __future__ import annotations

from ...corpora.wikipedia import generate_wikipedia_corpus
from ...nlp.pipeline import Pipeline
from . import index_performance


def run(
    article_counts: tuple[int, ...] = (50, 100, 200),
    queries_per_setting: int = 1,
) -> list[index_performance.IndexPerformanceResult]:
    """One :class:`IndexPerformanceResult` per corpus size."""
    pipeline = Pipeline()
    corpora = [
        generate_wikipedia_corpus(articles=articles, pipeline=pipeline)
        for articles in article_counts
    ]
    return index_performance.run_corpus_sweep(
        corpora, queries_per_setting=queries_per_setting
    )


def format_result(results: list[index_performance.IndexPerformanceResult]) -> str:
    return "\n\n".join(index_performance.format_result(result) for result in results)
