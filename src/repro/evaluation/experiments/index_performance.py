"""Figures 7 and 8 — index lookup time and effectiveness (DPLI comparison).

For every index design and every SyntheticTree benchmark query, measure:

* lookup time — how long the design takes to return its candidate sentences,
* effectiveness — the fraction of returned sentences that truly contain
  bindings for all query variables (Section 6.2.2),

aggregated (a/b) against increasing corpus size and (c/d) against the
number of extractions of the query.  Figure 7 uses the HappyDB-like corpus,
Figure 8 the Wikipedia-like corpus; both share this module.

Expected shape: KOKO and SUBTREE are the fastest; INVERTED is the slowest
and least effective; KOKO and ADVINVERTED reach near-perfect effectiveness;
SUBTREE sits in between (and supports only the wildcard-free, word-free
subset of the benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...corpora.synthetic_queries import TreeBenchmarkQuery, generate_tree_benchmark
from ...indexing.baselines import BaseTreeIndex, all_index_designs
from ...indexing.exact import count_extractions, matching_sentences
from ...nlp.types import Corpus
from ..metrics import index_effectiveness
from ..reporting import format_table

# Buckets for the "number of extractions" series (log-scale buckets, as in
# Figures 7(c,d) / 8(c,d)).
_EXTRACTION_BUCKETS = ((0, 1), (1, 10), (10, 100), (100, 1000), (1000, 10**9))


@dataclass
class QueryMeasurement:
    """One (design, query) measurement."""

    design: str
    query_name: str
    supported: bool
    lookup_seconds: float
    effectiveness: float
    extractions: int


@dataclass
class IndexPerformanceResult:
    corpus_name: str
    sentences: int
    measurements: list[QueryMeasurement] = field(default_factory=list)

    def mean_lookup_time(self, design: str) -> float:
        times = [m.lookup_seconds for m in self.measurements if m.design == design and m.supported]
        return sum(times) / len(times) if times else 0.0

    def mean_effectiveness(self, design: str) -> float:
        values = [m.effectiveness for m in self.measurements if m.design == design and m.supported]
        return sum(values) / len(values) if values else 0.0

    def by_extraction_bucket(self, design: str, metric: str) -> list[tuple[str, float]]:
        out = []
        for low, high in _EXTRACTION_BUCKETS:
            selected = [
                m
                for m in self.measurements
                if m.design == design and m.supported and low <= m.extractions < high
            ]
            if not selected:
                continue
            values = [
                m.lookup_seconds if metric == "time" else m.effectiveness
                for m in selected
            ]
            out.append((f"[{low},{high})", sum(values) / len(values)))
        return out

    def supported_fraction(self, design: str) -> float:
        all_measurements = [m for m in self.measurements if m.design == design]
        if not all_measurements:
            return 0.0
        return sum(1 for m in all_measurements if m.supported) / len(all_measurements)


def run(
    corpus: Corpus,
    queries: list[TreeBenchmarkQuery] | None = None,
    queries_per_setting: int = 1,
    designs: list[type[BaseTreeIndex]] | None = None,
) -> IndexPerformanceResult:
    """Measure every design over the SyntheticTree benchmark on *corpus*."""
    if queries is None:
        queries = generate_tree_benchmark(corpus, queries_per_setting=queries_per_setting)
    designs = designs or all_index_designs()
    result = IndexPerformanceResult(corpus_name=corpus.name, sentences=corpus.num_sentences)

    truth_cache: dict[str, set[int]] = {}
    extraction_cache: dict[str, int] = {}
    for benchmark_query in queries:
        name = benchmark_query.query.name
        truth_cache[name] = matching_sentences(corpus, benchmark_query.query)
        extraction_cache[name] = count_extractions(corpus, benchmark_query.query)

    for design_cls in designs:
        index = design_cls().build(corpus)
        for benchmark_query in queries:
            query = benchmark_query.query
            if not index.supports(query):
                result.measurements.append(
                    QueryMeasurement(
                        design=index.name,
                        query_name=query.name,
                        supported=False,
                        lookup_seconds=0.0,
                        effectiveness=0.0,
                        extractions=extraction_cache[query.name],
                    )
                )
                continue
            candidates, seconds = index.timed_lookup(query)
            effectiveness = index_effectiveness(candidates, truth_cache[query.name])
            result.measurements.append(
                QueryMeasurement(
                    design=index.name,
                    query_name=query.name,
                    supported=True,
                    lookup_seconds=seconds,
                    effectiveness=effectiveness,
                    extractions=extraction_cache[query.name],
                )
            )
    return result


def run_corpus_sweep(
    corpora: list[Corpus],
    queries_per_setting: int = 1,
    designs: list[type[BaseTreeIndex]] | None = None,
) -> list[IndexPerformanceResult]:
    """The (a)/(b) panels: one result per corpus size."""
    return [
        run(corpus, queries_per_setting=queries_per_setting, designs=designs)
        for corpus in corpora
    ]


def format_result(result: IndexPerformanceResult) -> str:
    designs = sorted({m.design for m in result.measurements})
    rows = [
        (
            design,
            result.mean_lookup_time(design),
            result.mean_effectiveness(design),
            result.supported_fraction(design),
        )
        for design in designs
    ]
    return format_table(
        ["design", "mean lookup (s)", "mean effectiveness", "supported fraction"],
        rows,
        title=(
            f"Index performance on {result.corpus_name} "
            f"({result.sentences} sentences)"
        ),
    )
