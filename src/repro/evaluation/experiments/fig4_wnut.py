"""Figure 4 — extracting sports teams and facilities from tweets.

Same protocol as Figure 3 on the WNUT-like tweet corpus.  Expected shape:
KOKO still leads on F1 at its best threshold, but the gap to IKE and CRF is
much smaller than on cafe blogs because tweets are single-sentence documents
and cross-sentence evidence aggregation cannot help.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...corpora.tweets import generate_tweet_corpus
from ...koko.engine import KokoEngine
from ...nlp.pipeline import Pipeline
from ..extraction_quality import (
    DEFAULT_THRESHOLDS,
    ThresholdSweep,
    crf_sweep,
    ike_sweep,
    koko_threshold_sweep,
)
from ..queries import (
    FACILITY_IKE_PATTERNS,
    FACILITY_QUERY,
    TEAM_IKE_PATTERNS,
    TEAM_QUERY,
)
from ..reporting import format_table


@dataclass
class WnutExperimentResult:
    """Sweeps per task ("team", "facility") per system."""

    sweeps: dict[str, dict[str, ThresholdSweep]] = field(default_factory=dict)
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS

    def best_f1(self, task: str, system: str) -> float:
        return self.sweeps[task][system].best_f1()


def run(
    tweets: int = 250,
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
    crf_epochs: int = 3,
    include_crf: bool = True,
) -> WnutExperimentResult:
    """Run the Figure 4 experiment on a freshly generated tweet corpus."""
    pipeline = Pipeline()
    corpus = generate_tweet_corpus(tweets=tweets, pipeline=pipeline)
    engine = KokoEngine(corpus)
    result = WnutExperimentResult(thresholds=thresholds)

    tasks = [
        ("team", TEAM_QUERY, TEAM_IKE_PATTERNS),
        ("facility", FACILITY_QUERY, FACILITY_IKE_PATTERNS),
    ]
    for gold_key, koko_query, ike_patterns in tasks:
        sweeps: dict[str, ThresholdSweep] = {}
        sweeps["KOKO"] = koko_threshold_sweep(
            engine, koko_query, corpus, gold_key=gold_key, thresholds=thresholds
        )
        sweeps["IKE"] = ike_sweep(
            corpus, ike_patterns, gold_key=gold_key, thresholds=thresholds
        )
        if include_crf:
            sweeps["CRFsuite"] = crf_sweep(
                corpus, gold_key=gold_key, thresholds=thresholds, epochs=crf_epochs
            )
        result.sweeps[gold_key] = sweeps
    return result


def format_result(result: WnutExperimentResult) -> str:
    blocks = []
    for task, sweeps in result.sweeps.items():
        rows = []
        for system, sweep in sweeps.items():
            for threshold, score in zip(sweep.thresholds, sweep.scores):
                rows.append((system, threshold, score.precision, score.recall, score.f1))
        blocks.append(
            format_table(
                ["system", "threshold", "precision", "recall", "F1"],
                rows,
                title=f"Figure 4 — extracting {task}s from tweets",
            )
        )
    return "\n\n".join(blocks)
