"""Odin comparison (Section 6.3, text).

The three wiki queries, translated to Odin-style dependency rules (extract
clauses only, since Odin cannot aggregate evidence), run over the same
corpus as KOKO.  Expected shape: Odin — which scans every sentence with
every rule and uses no indexes — is slower than KOKO, dramatically so for
the selective Chocolate and Title queries and only mildly for the
unselective DateOfBirth query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...baselines.odin import OdinMatcher
from ...corpora.wikipedia import generate_wikipedia_corpus
from ...koko.engine import KokoEngine
from ...nlp.pipeline import Pipeline
from ..queries import SCALEUP_QUERIES, odin_rules_for_scaleup
from ..reporting import format_table


@dataclass
class OdinComparisonRow:
    query: str
    koko_seconds: float
    odin_seconds: float

    @property
    def slowdown(self) -> float:
        return self.odin_seconds / self.koko_seconds if self.koko_seconds > 0 else float("inf")


@dataclass
class OdinComparisonResult:
    articles: int = 0
    rows: list[OdinComparisonRow] = field(default_factory=list)

    def slowdown(self, query: str) -> float:
        for row in self.rows:
            if row.query == query:
                return row.slowdown
        raise KeyError(query)


def run(articles: int = 100) -> OdinComparisonResult:
    """Compare KOKO query time against Odin annotation + execution time.

    As in the paper, KOKO's preprocessing (parsing and index construction)
    is done offline and not charged to the query, while Odin — which has no
    persistent index — must annotate the documents and then run its cascade,
    and both steps count ("Odin took more than 2 days to complete the
    annotation and execution of all queries").
    """
    import gc
    import time

    pipeline = Pipeline()
    corpus = generate_wikipedia_corpus(articles=articles, pipeline=pipeline)
    engine = KokoEngine(corpus)
    odin_rules = odin_rules_for_scaleup()
    result = OdinComparisonResult(articles=articles)
    raw_texts = {document.doc_id: document.text for document in corpus}
    for name, query_text in SCALEUP_QUERIES.items():
        # Millisecond-scale single-shot timings: collect up front so a
        # generational GC pause (whose phase depends on everything the
        # process allocated before) cannot land inside one timed region
        # and swamp the measurement.
        gc.collect()
        koko_outcome = engine.execute(query_text)
        koko_seconds = koko_outcome.timings.total

        gc.collect()
        started = time.perf_counter()
        odin_corpus = pipeline.annotate_corpus(raw_texts, name="odin")
        matcher = OdinMatcher(odin_rules[name])
        matcher.run(odin_corpus)
        odin_seconds = time.perf_counter() - started
        result.rows.append(
            OdinComparisonRow(
                query=name, koko_seconds=koko_seconds, odin_seconds=odin_seconds
            )
        )
    return result


def format_result(result: OdinComparisonResult) -> str:
    rows = [
        (row.query, row.koko_seconds, row.odin_seconds, row.slowdown)
        for row in result.rows
    ]
    return format_table(
        ["query", "KOKO seconds", "Odin seconds", "Odin slowdown"],
        rows,
        title=f"Odin vs KOKO on {result.articles} wiki articles (Section 6.3)",
        float_digits=4,
    )
