"""Figure 7 — index performance on the HappyDB-like corpus.

Thin wrapper around :mod:`index_performance` that generates HappyDB-like
corpora of increasing size and runs the SyntheticTree benchmark on each.
"""

from __future__ import annotations

from ...corpora.happydb import generate_happydb_corpus
from ...nlp.pipeline import Pipeline
from . import index_performance


def run(
    moment_counts: tuple[int, ...] = (100, 200, 400),
    queries_per_setting: int = 1,
) -> list[index_performance.IndexPerformanceResult]:
    """One :class:`IndexPerformanceResult` per corpus size."""
    pipeline = Pipeline()
    corpora = [
        generate_happydb_corpus(moments=moments, pipeline=pipeline)
        for moments in moment_counts
    ]
    return index_performance.run_corpus_sweep(
        corpora, queries_per_setting=queries_per_setting
    )


def format_result(results: list[index_performance.IndexPerformanceResult]) -> str:
    return "\n\n".join(index_performance.format_result(result) for result in results)
