"""NELL comparison (Section 6.1, text).

NELL bootstraps the "cafe" category from 17 seed instances and is evaluated
on the same cafe corpora.  Expected shape: precision clearly higher than
recall, and recall very low — the cafes in the corpus are mentioned only a
few times, which is exactly the regime where NELL's conservative coupled
bootstrapping cannot promote them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...baselines.nell import NellBootstrapper
from ...corpora.cafe_blogs import BARISTAMAG, SPRUDGE, generate_cafe_corpus
from ...nlp.pipeline import Pipeline
from ..metrics import PrecisionRecall, extraction_scores
from ..queries import NELL_CAFE_SEEDS
from ..reporting import format_table


@dataclass
class NellComparisonResult:
    scores: dict[str, PrecisionRecall] = field(default_factory=dict)


def run(
    baristamag_articles: int = 30,
    sprudge_articles: int = 60,
    iterations: int = 3,
    seed_count: int = 17,
    instance_support: dict[str, int] | None = None,
) -> NellComparisonResult:
    """Run NELL on both cafe corpora.

    NELL's 17 seed instances were cafes it already knew about.  Since every
    cafe in the synthetic corpora is newly generated, the seeds are taken
    from the gold labels of the first few documents (cafes NELL "already
    knows"), combined with the static seed list; precision and recall are
    then measured against the full gold set, matching the paper's protocol
    of evaluating the category as a whole.
    """
    pipeline = Pipeline()
    result = NellComparisonResult()
    # NELL counts pattern / instance co-occurrence at web scale; on a small
    # corpus the equivalent conservatism is a support threshold that grows
    # with document length (long articles repeat contexts more often).
    instance_support = instance_support or {"baristamag": 3, "sprudge": 5}
    for config, articles in ((BARISTAMAG, baristamag_articles), (SPRUDGE, sprudge_articles)):
        corpus = generate_cafe_corpus(config, pipeline=pipeline, articles=articles)
        gold = corpus.gold.get("cafe", {})
        seed_docs: set[str] = set()
        corpus_seeds: set[str] = set()
        for doc_id in sorted(gold):
            if len(corpus_seeds) >= seed_count:
                break
            corpus_seeds |= gold[doc_id]
            seed_docs.add(doc_id)
        bootstrapper = NellBootstrapper(
            seeds=set(NELL_CAFE_SEEDS) | corpus_seeds,
            iterations=iterations,
            min_pattern_support=2,
            min_instance_support=instance_support.get(config.name, 3),
            context_width=3,
        )
        # Evaluate only on the documents whose cafes were not given as
        # seeds, and never count a seed itself as a prediction: the
        # interesting question is how many *new* cafes NELL promotes.
        seed_lower = {s.lower() for s in corpus_seeds}
        predicted = {
            doc_id: {p for p in values if p.lower() not in seed_lower}
            for doc_id, values in bootstrapper.extract_all(corpus).items()
            if doc_id not in seed_docs
        }
        eval_gold = {
            doc_id: values for doc_id, values in gold.items() if doc_id not in seed_docs
        }
        result.scores[config.name] = extraction_scores(predicted, eval_gold)
    return result


def format_result(result: NellComparisonResult) -> str:
    rows = [
        (name, score.precision, score.recall, score.f1)
        for name, score in result.scores.items()
    ]
    return format_table(
        ["corpus", "precision", "recall", "F1"],
        rows,
        title="NELL on the cafe-extraction task (Section 6.1)",
    )
