"""Table 1 — average extract-clause evaluation time with and without GSP.

The SyntheticSpan benchmark (span variables with 1, 3 and 5 atoms) is
evaluated per sentence with the skip plan enabled (KOKO&GSP) and disabled
(KOKO&NOGSP) on the HappyDB-like and Wikipedia-like corpora.  Expected
shape: at 1 atom the two are comparable (GSP may even be marginally slower
because planning costs something); at 3 and especially 5 atoms, NOGSP is
orders of magnitude slower because it enumerates every elastic span.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ...corpora.happydb import generate_happydb_corpus
from ...corpora.synthetic_queries import generate_span_benchmark
from ...corpora.wikipedia import generate_wikipedia_corpus
from ...koko.dpli import run_dpli
from ...koko.evaluator import SentenceEvaluator
from ...koko.normalize import normalize
from ...koko.parser import parse_query
from ...indexing.koko_index import KokoIndexSet
from ...nlp.pipeline import Pipeline
from ...nlp.types import Corpus
from ..reporting import format_table


@dataclass
class GspCell:
    """One Table 1 cell: mean per-sentence evaluation time in milliseconds."""

    corpus: str
    atoms: int
    mode: str
    mean_ms: float
    sentences_evaluated: int


@dataclass
class GspExperimentResult:
    cells: list[GspCell] = field(default_factory=list)

    def mean_ms(self, corpus: str, atoms: int, mode: str) -> float:
        for cell in self.cells:
            if cell.corpus == corpus and cell.atoms == atoms and cell.mode == mode:
                return cell.mean_ms
        raise KeyError((corpus, atoms, mode))

    def speedup(self, corpus: str, atoms: int) -> float:
        """NOGSP time divided by GSP time for one cell pair."""
        gsp = self.mean_ms(corpus, atoms, "GSP")
        nogsp = self.mean_ms(corpus, atoms, "NOGSP")
        return nogsp / gsp if gsp > 0 else float("inf")


def run(
    happydb_moments: int = 120,
    wikipedia_articles: int = 60,
    queries_per_setting: int = 6,
    max_sentences_per_query: int = 12,
) -> GspExperimentResult:
    """Measure per-sentence extract-clause evaluation time (Table 1)."""
    pipeline = Pipeline()
    corpora = {
        "HappyDB": generate_happydb_corpus(moments=happydb_moments, pipeline=pipeline),
        "Wikipedia": generate_wikipedia_corpus(
            articles=wikipedia_articles, pipeline=pipeline
        ),
    }
    result = GspExperimentResult()
    for corpus_name, corpus in corpora.items():
        benchmark = generate_span_benchmark(
            corpus, queries_per_setting=queries_per_setting
        )
        indexes = KokoIndexSet().build(corpus)
        for atoms in (1, 3, 5):
            queries = [q for q in benchmark if q.atoms == atoms]
            for mode, use_gsp in (("GSP", True), ("NOGSP", False)):
                total_seconds = 0.0
                evaluated = 0
                for benchmark_query in queries:
                    seconds, count = _evaluate_query(
                        benchmark_query.text,
                        corpus,
                        indexes,
                        use_gsp,
                        max_sentences_per_query,
                    )
                    total_seconds += seconds
                    evaluated += count
                mean_ms = (total_seconds / evaluated * 1000.0) if evaluated else 0.0
                result.cells.append(
                    GspCell(
                        corpus=corpus_name,
                        atoms=atoms,
                        mode=mode,
                        mean_ms=mean_ms,
                        sentences_evaluated=evaluated,
                    )
                )
    return result


def _evaluate_query(
    query_text: str,
    corpus: Corpus,
    indexes: KokoIndexSet,
    use_gsp: bool,
    max_sentences: int,
) -> tuple[float, int]:
    """Total extract-clause evaluation seconds and sentence count for one query."""
    normalized = normalize(parse_query(query_text))
    dpli = run_dpli(normalized, indexes)
    evaluator = SentenceEvaluator(normalized, use_gsp=use_gsp)
    candidate_sids = dpli.candidate_sids
    sentences = []
    for _, sentence in corpus.all_sentences():
        if candidate_sids is None or sentence.sid in candidate_sids:
            sentences.append(sentence)
        if len(sentences) >= max_sentences:
            break
    total = 0.0
    for sentence in sentences:
        started = time.perf_counter()
        evaluator.evaluate(sentence, dpli)
        total += time.perf_counter() - started
    return total, len(sentences)


def format_result(result: GspExperimentResult) -> str:
    rows = [
        (cell.corpus, cell.atoms, cell.mode, cell.mean_ms, cell.sentences_evaluated)
        for cell in result.cells
    ]
    return format_table(
        ["corpus", "atoms", "mode", "ms per sentence", "sentences"],
        rows,
        title="Table 1 — extract-clause evaluation time, GSP vs NOGSP",
    )
