"""Figure 5 — KOKO with and without descriptor conditions.

The cafe query is run twice per corpus: once as published and once with the
descriptor (``[[...]]``) conditions removed.  Expected shape: descriptors
improve F1 on the short-article BARISTAMAG-like corpus (where exact evidence
phrases are rare) and change little on the long-article SPRUDGE-like corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...corpora.cafe_blogs import BARISTAMAG, SPRUDGE, generate_cafe_corpus
from ...koko.engine import KokoEngine
from ...nlp.pipeline import Pipeline
from ..extraction_quality import DEFAULT_THRESHOLDS, ThresholdSweep, koko_threshold_sweep
from ..queries import CAFE_QUERY, CAFE_QUERY_NO_DESCRIPTORS
from ..reporting import format_table


@dataclass
class DescriptorAblationResult:
    """Per corpus: the with-descriptors and without-descriptors sweeps."""

    sweeps: dict[str, dict[str, ThresholdSweep]] = field(default_factory=dict)
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS

    def f1_gain(self, corpus_name: str) -> float:
        """Best-F1 difference (with - without descriptors) on one corpus."""
        with_descr = self.sweeps[corpus_name]["with"].best_f1()
        without = self.sweeps[corpus_name]["without"].best_f1()
        return with_descr - without


def run(
    baristamag_articles: int = 30,
    sprudge_articles: int = 60,
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
) -> DescriptorAblationResult:
    """Run the Figure 5 ablation."""
    pipeline = Pipeline()
    result = DescriptorAblationResult(thresholds=thresholds)
    for config, articles in ((BARISTAMAG, baristamag_articles), (SPRUDGE, sprudge_articles)):
        corpus = generate_cafe_corpus(config, pipeline=pipeline, articles=articles)
        engine = KokoEngine(corpus)
        result.sweeps[config.name] = {
            "with": koko_threshold_sweep(
                engine, CAFE_QUERY, corpus, gold_key="cafe", thresholds=thresholds,
                system="KOKO (with descriptors)",
            ),
            "without": koko_threshold_sweep(
                engine, CAFE_QUERY_NO_DESCRIPTORS, corpus, gold_key="cafe",
                thresholds=thresholds, system="KOKO (without descriptors)",
            ),
        }
    return result


def format_result(result: DescriptorAblationResult) -> str:
    rows = []
    for corpus_name, sweeps in result.sweeps.items():
        for label, sweep in sweeps.items():
            for threshold, score in zip(sweep.thresholds, sweep.scores):
                rows.append((corpus_name, label, threshold, score.f1))
    return format_table(
        ["corpus", "descriptors", "threshold", "F1"],
        rows,
        title="Figure 5 — KOKO with/without descriptors",
    )
