"""Figure 6 — index construction time and size vs. corpus size.

The four designs (INVERTED, ADVINVERTED, SUBTREE, KOKO) are built over
wiki-style corpora of increasing size.  Expected shape: KOKO has the
smallest footprint; INVERTED is slightly smaller than ADVINVERTED; SUBTREE
is by far the largest and the slowest to build; KOKO's build time sits
between the plain inverted designs and SUBTREE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...corpora.wikipedia import generate_wikipedia_corpus
from ...indexing.baselines import all_index_designs
from ...nlp.pipeline import Pipeline
from ..reporting import format_table


@dataclass
class IndexConstructionPoint:
    """One (design, corpus size) measurement."""

    design: str
    articles: int
    build_seconds: float
    size_bytes: int


@dataclass
class IndexConstructionResult:
    points: list[IndexConstructionPoint] = field(default_factory=list)

    def series(self, design: str, metric: str) -> list[tuple[int, float]]:
        out = []
        for point in self.points:
            if point.design == design:
                value = point.build_seconds if metric == "time" else float(point.size_bytes)
                out.append((point.articles, value))
        return sorted(out)

    def sizes_at(self, articles: int) -> dict[str, int]:
        return {
            p.design: p.size_bytes for p in self.points if p.articles == articles
        }

    def build_times_at(self, articles: int) -> dict[str, float]:
        return {
            p.design: p.build_seconds for p in self.points if p.articles == articles
        }


def run(article_counts: tuple[int, ...] = (25, 50, 100, 200)) -> IndexConstructionResult:
    """Build every index design at every corpus size."""
    pipeline = Pipeline()
    result = IndexConstructionResult()
    largest = generate_wikipedia_corpus(articles=max(article_counts), pipeline=pipeline)
    for articles in article_counts:
        corpus = _corpus_prefix(largest, articles)
        for design_cls in all_index_designs():
            index = design_cls().build(corpus)
            result.points.append(
                IndexConstructionPoint(
                    design=index.name,
                    articles=articles,
                    build_seconds=index.build_seconds,
                    size_bytes=index.approximate_bytes(),
                )
            )
    return result


def _corpus_prefix(corpus, articles: int):
    """The first *articles* documents of an annotated corpus (shared parses)."""
    from ...nlp.types import Corpus

    prefix = Corpus(name=f"{corpus.name}-{articles}")
    prefix.documents = corpus.documents[:articles]
    prefix.gold = corpus.gold
    return prefix


def format_result(result: IndexConstructionResult) -> str:
    rows = [
        (p.articles, p.design, p.build_seconds, p.size_bytes)
        for p in sorted(result.points, key=lambda p: (p.articles, p.design))
    ]
    return format_table(
        ["articles", "design", "build seconds", "size bytes"],
        rows,
        title="Figure 6 — index construction time and size",
    )
