"""Experiment harness: metrics, shared queries, reporting, experiments."""

from .metrics import PrecisionRecall, extraction_scores, f1_from, index_effectiveness
from .reporting import format_series, format_table

__all__ = [
    "PrecisionRecall",
    "extraction_scores",
    "f1_from",
    "format_series",
    "format_table",
    "index_effectiveness",
]
