"""Plain-text table / series formatting for experiment outputs."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_digits: int = 3,
) -> str:
    """Render rows as an aligned plain-text table."""
    rendered_rows = [
        [_format_cell(cell, float_digits) for cell in row] for row in rows
    ]
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object, float_digits: int) -> str:
    if isinstance(cell, float):
        return f"{cell:.{float_digits}f}"
    return str(cell)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render one x/y series as "name: x=y, x=y, ..." (figures are series)."""
    pairs = ", ".join(f"{x}={_format_cell(y, 3)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
