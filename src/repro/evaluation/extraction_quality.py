"""Shared machinery for the extraction-quality experiments (Figures 3-5).

All three figures compare per-document extraction sets against gold sets
while sweeping the KOKO threshold.  This module runs each system once and
produces the threshold sweep from the recorded scores, so the experiments
stay cheap enough for the test suite and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.crf import CrfEntityExtractor
from ..baselines.ike import IkeExtractor, IkePattern
from ..koko.engine import KokoEngine
from ..nlp.types import Corpus
from .metrics import PrecisionRecall, extraction_scores

DEFAULT_THRESHOLDS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass
class ThresholdSweep:
    """P/R/F1 of one system at each threshold (flat for systems without one)."""

    system: str
    thresholds: tuple[float, ...]
    scores: list[PrecisionRecall] = field(default_factory=list)

    def best_f1(self) -> float:
        return max((s.f1 for s in self.scores), default=0.0)

    def f1_series(self) -> list[float]:
        return [s.f1 for s in self.scores]

    def precision_series(self) -> list[float]:
        return [s.precision for s in self.scores]

    def recall_series(self) -> list[float]:
        return [s.recall for s in self.scores]


def koko_scored_values(
    engine: KokoEngine, query: str, variable: str = "x"
) -> dict[str, dict[str, float]]:
    """doc_id -> {value -> best score} from a single engine run."""
    result = engine.execute(query, threshold_override=0.0, keep_all_scores=True)
    scored: dict[str, dict[str, float]] = {}
    for extraction in result.tuples:
        value = extraction.value(variable)
        score = extraction.score(variable)
        if score is None:
            score = 1.0
        bucket = scored.setdefault(extraction.doc_id, {})
        if score > bucket.get(value, -1.0):
            bucket[value] = score
    return scored


def koko_threshold_sweep(
    engine: KokoEngine,
    query: str,
    corpus: Corpus,
    gold_key: str,
    variable: str = "x",
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
    system: str = "KOKO",
) -> ThresholdSweep:
    """Run KOKO once and score it at every threshold."""
    scored = koko_scored_values(engine, query, variable)
    sweep = ThresholdSweep(system=system, thresholds=thresholds)
    gold = corpus.gold.get(gold_key, {})
    for threshold in thresholds:
        predicted = {
            doc_id: {value for value, score in values.items() if score >= threshold}
            for doc_id, values in scored.items()
        }
        sweep.scores.append(extraction_scores(predicted, gold))
    return sweep


def ike_sweep(
    corpus: Corpus,
    patterns: list[IkePattern],
    gold_key: str,
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
) -> ThresholdSweep:
    """IKE has no threshold; its score is repeated across the sweep."""
    extractor = IkeExtractor(patterns)
    predicted = extractor.extract_all(corpus)
    score = extraction_scores(predicted, corpus.gold.get(gold_key, {}))
    sweep = ThresholdSweep(system="IKE", thresholds=thresholds)
    sweep.scores = [score for _ in thresholds]
    return sweep


def crf_sweep(
    corpus: Corpus,
    gold_key: str,
    train_fraction: float = 0.5,
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
    epochs: int = 3,
) -> ThresholdSweep:
    """Train the CRF on a fraction of the documents and score it (flat sweep)."""
    doc_ids = [doc.doc_id for doc in corpus]
    cutoff = max(1, int(len(doc_ids) * train_fraction))
    train_ids = set(doc_ids[:cutoff])
    extractor = CrfEntityExtractor(epochs=epochs)
    extractor.train(corpus, gold_key, train_ids)
    predicted = extractor.extract_all(corpus)
    score = extraction_scores(predicted, corpus.gold.get(gold_key, {}))
    sweep = ThresholdSweep(system="CRFsuite", thresholds=thresholds)
    sweep.scores = [score for _ in thresholds]
    return sweep
