"""The extraction queries and baseline rule sets used by the experiments.

These are the repository's counterparts of the paper's Appendix A (the cafe
/ facilities / sports-team KOKO queries and their IKE translations) and of
the three Section 6.3 wiki queries.  The conditions mirror the published
queries; weights are re-balanced for the synthetic corpora (documented in
EXPERIMENTS.md) while keeping the published structure: strong boolean
conditions, weaker descriptor conditions, an excluding clause that removes
the known false-positive families.
"""

from __future__ import annotations

from ..baselines.ike import IkePattern
from ..baselines.odin import OdinRule
from ..indexing.query_ir import (
    CHILD,
    DESCENDANT,
    KIND_PARSE_LABEL,
    KIND_POS,
    KIND_WORD,
    TreePath,
    TreeStep,
)

# ----------------------------------------------------------------------
# cafe extraction (Figure 9)
# ----------------------------------------------------------------------
CAFE_QUERY = """
extract x:Entity from "blogs" if ()
satisfying x
(str(x) contains "Cafe" {1}) or
(str(x) contains "Coffee" {1}) or
(str(x) contains "Roasters" {1}) or
(str(x) contains "Espresso" {1}) or
("cafe called" x {1}) or
("cafes such as" x {1}) or
(x ", a cafe" {1}) or
(x near ", a cafe" {0.8}) or
(x [["serves coffee"]] {0.45}) or
(x [["sells coffee"]] {0.45}) or
(x [["employs baristas"]] {0.4}) or
([["baristas of"]] x {0.35}) or
(x [["coffee menu"]] {0.35}) or
(x [["pours espresso"]] {0.4})
with threshold 0.6
excluding
(str(x) matches "^[a-z 0-9.']+$") or
(str(x) matches "^@") or
(str(x) matches "^[Cc]offee$|^[Cc]afe$") or
(str(x) matches "[Bb]arista [Cc]hampionship") or
(str(x) matches "[Bb]rewers [Cc]up") or
(str(x) matches "[Ff]est(ival)?$") or
(str(x) matches "[Ll]a Marzocco") or
(str(x) matches "[Ss]ynesso") or
(str(x) matches "[Aa]eropress") or
(str(x) matches "[Vv]60") or
(str(x) matches "^[0-9]+ .*(St|Street|Ave|Avenue)$") or
(str(x) in dict("Location"))
"""

# The same query without its descriptor conditions (Figure 5's ablation).
CAFE_QUERY_NO_DESCRIPTORS = """
extract x:Entity from "blogs" if ()
satisfying x
(str(x) contains "Cafe" {1}) or
(str(x) contains "Coffee" {1}) or
(str(x) contains "Roasters" {1}) or
(str(x) contains "Espresso" {1}) or
("cafe called" x {1}) or
("cafes such as" x {1}) or
(x ", a cafe" {1}) or
(x near ", a cafe" {0.8})
with threshold 0.6
excluding
(str(x) matches "^[a-z 0-9.']+$") or
(str(x) matches "^@") or
(str(x) matches "^[Cc]offee$|^[Cc]afe$") or
(str(x) matches "[Bb]arista [Cc]hampionship") or
(str(x) matches "[Bb]rewers [Cc]up") or
(str(x) matches "[Ff]est(ival)?$") or
(str(x) matches "[Ll]a Marzocco") or
(str(x) matches "[Ss]ynesso") or
(str(x) matches "[Aa]eropress") or
(str(x) matches "[Vv]60") or
(str(x) matches "^[0-9]+ .*(St|Street|Ave|Avenue)$") or
(str(x) in dict("Location"))
"""

# IKE translation of the cafe query (Appendix A.1): sentence-local patterns,
# no excluding clause, similarity expansion on the descriptor-like phrases.
CAFE_IKE_PATTERNS = [
    IkePattern(context="cafe called", np_side="after", window=3),
    IkePattern(context="cafes such as", np_side="after", window=3),
    IkePattern(context="a cafe", np_side="before", window=4),
    IkePattern(context="serves coffee", np_side="before", window=10, expand_k=10),
    IkePattern(context="sells coffee", np_side="before", window=10, expand_k=10),
    IkePattern(context="employs baristas", np_side="before", window=10, expand_k=10),
    IkePattern(context="baristas of", np_side="after", window=10, expand_k=10),
    IkePattern(context="coffee menu", np_side="before", window=10, expand_k=10),
    IkePattern(context="coffee from", np_side="before", window=10, expand_k=10),
]

# NELL seeds: 17 cafe names, as in the paper's NELL experiment.
NELL_CAFE_SEEDS = {
    "Blue Bottle Coffee", "Golden Sparrow Cafe", "Copper Owl Roasters",
    "Velvet Fox Coffee", "Maple Anchor Cafe", "Cedar Heron Coffee Roasters",
    "Quiet Pine Espresso Bar", "Harbor Lantern Coffee", "Silver Finch Cafe",
    "Rustic Mill Coffee House", "Bright Compass Cafe", "Iron Poppy Roasters",
    "Stone Crane Coffee", "River Clover Cafe", "Summit Acorn Coffee Co",
    "Lucky Magpie Espresso Bar", "Humble Spoon Cafe",
}

# ----------------------------------------------------------------------
# sports teams and facilities from tweets (Figures 10-11)
# ----------------------------------------------------------------------
TEAM_QUERY = """
extract x:Entity from "tweets" if ()
satisfying x
(x [["to host"]] {0.9}) or
(x "vs" {0.9}) or
("vs" x {0.9}) or
(x "versus" {0.9}) or
("versus" x {0.9}) or
(x [["soccer"]] {0.9}) or
("Go" x {0.9}) or
(x near "win" {0.6}) or
(x near "game" {0.5})
with threshold 0.4
excluding
(str(x) matches "^[a-z 0-9.']+$") or
(str(x) matches "^@") or
(str(x) mentions "pm") or
(str(x) mentions "tonight")
"""

FACILITY_QUERY = """
extract x:Entity from "tweets" if ()
satisfying x
("at" x {1}) or
([["went to"]] x {0.8}) or
([["go to"]] x {0.8}) or
(x near "renovating" {0.6}) or
(x near "seats" {0.5}) or
(x near "lines" {0.5})
with threshold 0.4
excluding
(str(x) matches "^[a-z 0-9.']+$") or
(str(x) matches "^@") or
(str(x) mentions "pm") or
(str(x) mentions "am") or
(str(x) mentions "today") or
(str(x) mentions "tomorrow") or
(str(x) mentions "tonight")
"""

TEAM_IKE_PATTERNS = [
    IkePattern(context="vs", np_side="before", window=3),
    IkePattern(context="vs", np_side="after", window=3),
    IkePattern(context="versus", np_side="before", window=3),
    IkePattern(context="to host", np_side="before", window=5, expand_k=5),
    IkePattern(context="Go", np_side="after", window=2),
]

FACILITY_IKE_PATTERNS = [
    IkePattern(context="at", np_side="after", window=3),
    IkePattern(context="went to", np_side="after", window=3, expand_k=5),
    IkePattern(context="go to", np_side="after", window=3, expand_k=5),
]

# ----------------------------------------------------------------------
# the three Section 6.3 wiki queries (Chocolate / Title / DateOfBirth)
# ----------------------------------------------------------------------
CHOCOLATE_QUERY = """
extract c:Entity from "wiki" if (
/ROOT:{
v = //verb, o = v//pobj[text="chocolate"],
s = v/nsubj } (s) in (c))
satisfying v
(str(v) ~ "is" {1})
with threshold 0.5
"""

TITLE_QUERY = """
extract a:Person, b:Str from "wiki" if (
/ROOT:{
v = //"called", p = v/propn, b = p.subtree,
c = a + ^ + v + ^ + b})
"""

DATEOFBIRTH_QUERY = """
extract a:Person, b:Date from "wiki" if (
/ROOT:{ v = //verb })
satisfying v
(str(v) ~ "born" {1})
with threshold 0.2
"""

SCALEUP_QUERIES = {
    "Chocolate": CHOCOLATE_QUERY,
    "Title": TITLE_QUERY,
    "DateOfBirth": DATEOFBIRTH_QUERY,
}


# ----------------------------------------------------------------------
# Odin translations of the wiki queries (extract clauses only)
# ----------------------------------------------------------------------
def odin_rules_for_scaleup() -> dict[str, list[OdinRule]]:
    """Odin rule cascades for the three Section 6.3 queries."""
    chocolate = OdinRule(
        name="chocolate-type",
        priority=1,
        arguments=(
            (
                "verb",
                TreePath(steps=(TreeStep(DESCENDANT, "verb", KIND_POS),)),
            ),
            (
                "object",
                TreePath(
                    steps=(
                        TreeStep(DESCENDANT, "verb", KIND_POS),
                        TreeStep(DESCENDANT, "chocolate", KIND_WORD),
                    )
                ),
            ),
            (
                "subject",
                TreePath(
                    steps=(
                        TreeStep(DESCENDANT, "verb", KIND_POS),
                        TreeStep(CHILD, "nsubj", KIND_PARSE_LABEL),
                    )
                ),
            ),
        ),
        outputs=("subject",),
    )
    title = OdinRule(
        name="people-titles",
        priority=1,
        arguments=(
            (
                "called",
                TreePath(steps=(TreeStep(DESCENDANT, "called", KIND_WORD),)),
            ),
            (
                "nickname",
                TreePath(
                    steps=(
                        TreeStep(DESCENDANT, "called", KIND_WORD),
                        TreeStep(DESCENDANT, "propn", KIND_POS),
                    )
                ),
            ),
        ),
        outputs=("nickname",),
    )
    date_of_birth = OdinRule(
        name="date-of-birth",
        priority=1,
        arguments=(
            ("verb", TreePath(steps=(TreeStep(DESCENDANT, "verb", KIND_POS),))),
            ("person", TreePath(steps=(TreeStep(DESCENDANT, "propn", KIND_POS),))),
            ("date", TreePath(steps=(TreeStep(DESCENDANT, "num", KIND_POS),))),
        ),
        outputs=("person", "date"),
    )
    return {
        "Chocolate": [chocolate],
        "Title": [title],
        "DateOfBirth": [date_of_birth],
    }
