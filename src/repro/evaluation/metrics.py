"""Evaluation metrics: extraction quality and index quality (Section 6)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PrecisionRecall:
    """Micro-averaged precision, recall and F1 over a set of documents."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    predicted: int
    gold: int


def _normalize_name(name: str) -> str:
    return " ".join(name.lower().split())


def extraction_scores(
    predicted: dict[str, set[str]],
    gold: dict[str, set[str]],
) -> PrecisionRecall:
    """Micro-averaged P/R/F1 of per-document predicted strings vs gold strings.

    Matching is case-insensitive on whitespace-normalised strings; a
    prediction also counts as correct when it equals a gold name with a
    trailing generic word dropped (e.g. "Blue Bottle Coffee" vs "Blue
    Bottle"), mirroring the fuzzy matching crowd-sourced gold requires.
    """
    true_positives = 0
    predicted_total = 0
    gold_total = 0
    doc_ids = set(predicted) | set(gold)
    for doc_id in doc_ids:
        predicted_names = {_normalize_name(p) for p in predicted.get(doc_id, set()) if p.strip()}
        gold_names = {_normalize_name(g) for g in gold.get(doc_id, set()) if g.strip()}
        predicted_total += len(predicted_names)
        gold_total += len(gold_names)
        for name in predicted_names:
            if name in gold_names or any(_loose_match(name, g) for g in gold_names):
                true_positives += 1
    precision = true_positives / predicted_total if predicted_total else 0.0
    recall = true_positives / gold_total if gold_total else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if (precision + recall) > 0
        else 0.0
    )
    return PrecisionRecall(
        precision=precision,
        recall=recall,
        f1=f1,
        true_positives=true_positives,
        predicted=predicted_total,
        gold=gold_total,
    )


def _loose_match(predicted: str, gold: str) -> bool:
    """Prefix match modulo one trailing word on either side."""
    p_words, g_words = predicted.split(), gold.split()
    if not p_words or not g_words:
        return False
    if p_words == g_words[:-1] and len(g_words) > 1:
        return True
    if g_words == p_words[:-1] and len(p_words) > 1:
        return True
    return False


def index_effectiveness(returned: set[int], truly_matching: set[int]) -> float:
    """The effectiveness score of Section 6.2.2.

    The ratio of sentences that contain bindings for all query variables to
    the sentences the index returned.  An index that returns nothing for a
    query that has no matches is perfectly effective (1.0).
    """
    if not returned:
        return 1.0
    return len(returned & truly_matching) / len(returned)


def f1_from(precision: float, recall: float) -> float:
    """Harmonic mean helper."""
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)
