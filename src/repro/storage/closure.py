"""Closure-table helpers for hierarchy indexes.

Section 4 of the paper stores the PL and POS hierarchy indexes as *closure
tables* (Karwin's "SQL Antipatterns" pattern): one row per
(ancestor, descendant) pair including the reflexive pair, so that "all nodes
under this path prefix" becomes a single equality selection.

:class:`ClosureTable` builds that representation from parent pointers and
answers ancestor/descendant queries; ``to_table`` materialises it into a
storage :class:`~repro.storage.table.Table` with the schema used in the
paper's Section 6.2.1 (``id, label, depth, aid, alabel, adepth``).
"""

from __future__ import annotations

from dataclasses import dataclass

from .database import Database
from .table import Schema, Table


@dataclass(frozen=True)
class ClosureRow:
    """One (descendant, ancestor) pair with labels and depths."""

    node_id: int
    label: str
    depth: int
    ancestor_id: int
    ancestor_label: str
    ancestor_depth: int


class ClosureTable:
    """Transitive-closure representation of a forest of labelled nodes."""

    def __init__(self) -> None:
        self._labels: dict[int, str] = {}
        self._depths: dict[int, int] = {}
        self._parents: dict[int, int | None] = {}
        self._ancestors: dict[int, list[int]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: int, label: str, parent_id: int | None) -> None:
        """Register a node; its parent must have been added before it."""
        if node_id in self._labels:
            raise ValueError(f"node {node_id} already registered")
        if parent_id is not None and parent_id not in self._labels:
            raise ValueError(f"parent {parent_id} of node {node_id} is unknown")
        self._labels[node_id] = label
        self._parents[node_id] = parent_id
        if parent_id is None:
            self._depths[node_id] = 0
            self._ancestors[node_id] = [node_id]
        else:
            self._depths[node_id] = self._depths[parent_id] + 1
            self._ancestors[node_id] = self._ancestors[parent_id] + [node_id]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._labels)

    def label(self, node_id: int) -> str:
        return self._labels[node_id]

    def depth(self, node_id: int) -> int:
        return self._depths[node_id]

    def parent(self, node_id: int) -> int | None:
        return self._parents[node_id]

    def ancestors(self, node_id: int) -> list[int]:
        """Ancestor ids from the root down to (and including) *node_id*."""
        return list(self._ancestors[node_id])

    def path_labels(self, node_id: int) -> list[str]:
        """Labels along the root-to-node path."""
        return [self._labels[a] for a in self._ancestors[node_id]]

    def is_ancestor(self, ancestor_id: int, node_id: int) -> bool:
        """True when *ancestor_id* lies on the path above *node_id* (strictly)."""
        return ancestor_id != node_id and ancestor_id in self._ancestors[node_id]

    def rows(self) -> list[ClosureRow]:
        """Every (descendant, ancestor) pair including the reflexive one."""
        out: list[ClosureRow] = []
        for node_id, ancestors in self._ancestors.items():
            for ancestor_id in ancestors:
                out.append(
                    ClosureRow(
                        node_id=node_id,
                        label=self._labels[node_id],
                        depth=self._depths[node_id],
                        ancestor_id=ancestor_id,
                        ancestor_label=self._labels[ancestor_id],
                        ancestor_depth=self._depths[ancestor_id],
                    )
                )
        return out

    # ------------------------------------------------------------------
    # materialisation into the storage engine
    # ------------------------------------------------------------------
    CLOSURE_SCHEMA = Schema.of("id", "label", "depth", "aid", "alabel", "adepth")

    def to_table(self, database: Database, table_name: str, create_indexes: bool = True) -> Table:
        """Materialise this closure table into *database* as *table_name*.

        ``create_indexes=False`` skips the secondary B-trees (snapshot path).
        """
        if database.has_table(table_name):
            database.drop_table(table_name)
        table = database.create_table(table_name, self.CLOSURE_SCHEMA)
        for row in self.rows():
            table.insert(
                (
                    row.node_id,
                    row.label,
                    row.depth,
                    row.ancestor_id,
                    row.ancestor_label,
                    row.ancestor_depth,
                )
            )
        if create_indexes:
            table.create_index("by_label", "label")
            table.create_index("by_alabel", "alabel")
            table.create_index("by_id", "id")
        return table
