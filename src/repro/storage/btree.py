"""A classic in-memory B-tree supporting duplicate keys, point and range scans.

The paper stores every index in PostgreSQL backed by B-tree indexes.  The
embedded storage engine in this package mirrors that: every secondary index
on a table is a :class:`BTree`.  Keys may be any totally ordered Python
value (including tuples), and each key maps to a list of values so that
duplicate keys — ubiquitous in posting lists — are supported natively.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator


class _Node:
    """A B-tree node; ``children`` is empty for leaves."""

    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[list[Any]] = []
        self.children: list[_Node] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTree:
    """B-tree with configurable order (maximum number of children per node).

    Parameters
    ----------
    order:
        Maximum number of children of an internal node; must be at least 4.
        The default of 64 keeps the tree shallow for the posting-list sizes
        used in the experiments.
    """

    def __init__(self, order: int = 64) -> None:
        if order < 4:
            raise ValueError("B-tree order must be >= 4")
        self.order = order
        self._root = _Node()
        self._size = 0
        self._key_count = 0

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of inserted (key, value) pairs."""
        return self._size

    @property
    def key_count(self) -> int:
        """Number of distinct keys."""
        return self._key_count

    def __contains__(self, key: Any) -> bool:
        return bool(self.get(key))

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Insert *value* under *key* (duplicates allowed)."""
        root = self._root
        if len(root.keys) >= self.order - 1:
            new_root = _Node()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        self._insert_nonfull(root, key, value)
        self._size += 1

    def _insert_nonfull(self, node: _Node, key: Any, value: Any) -> None:
        while True:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx].append(value)
                return
            if node.is_leaf:
                node.keys.insert(idx, key)
                node.values.insert(idx, [value])
                self._key_count += 1
                return
            child = node.children[idx]
            if len(child.keys) >= self.order - 1:
                self._split_child(node, idx)
                if key > node.keys[idx]:
                    idx += 1
                elif key == node.keys[idx]:
                    node.values[idx].append(value)
                    return
            node = node.children[idx]

    def _split_child(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        mid = len(child.keys) // 2
        sibling = _Node()
        sibling.keys = child.keys[mid + 1 :]
        sibling.values = child.values[mid + 1 :]
        if not child.is_leaf:
            sibling.children = child.children[mid + 1 :]
            child.children = child.children[: mid + 1]
        parent.keys.insert(index, child.keys[mid])
        parent.values.insert(index, child.values[mid])
        parent.children.insert(index + 1, sibling)
        child.keys = child.keys[:mid]
        child.values = child.values[:mid]

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, key: Any) -> list[Any]:
        """Return the list of values stored under *key* (empty if absent)."""
        node = self._root
        while True:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                return list(node.values[idx])
            if node.is_leaf:
                return []
            node = node.children[idx]

    def range(self, low: Any = None, high: Any = None) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with ``low <= key <= high`` in key order.

        ``None`` bounds are open ended.
        """
        yield from self._range_node(self._root, low, high)

    def _range_node(self, node: _Node, low: Any, high: Any) -> Iterator[tuple[Any, Any]]:
        start = 0 if low is None else bisect.bisect_left(node.keys, low)
        end = len(node.keys) if high is None else bisect.bisect_right(node.keys, high)
        if node.is_leaf:
            for i in range(start, end):
                for value in node.values[i]:
                    yield node.keys[i], value
            return
        for i in range(start, end + 1):
            if i < len(node.children):
                yield from self._range_node(node.children[i], low, high)
            if i < end and i < len(node.keys):
                for value in node.values[i]:
                    yield node.keys[i], value

    def prefix(self, key_prefix: tuple) -> Iterator[tuple[Any, Any]]:
        """Yield pairs whose tuple key starts with *key_prefix*.

        Only meaningful when all keys are tuples of the same arity.
        """
        for key, value in self.range(low=key_prefix):
            if not isinstance(key, tuple) or key[: len(key_prefix)] != key_prefix:
                break
            yield key, value

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Yield every ``(key, value)`` pair in key order."""
        yield from self.range()

    def keys(self) -> Iterator[Any]:
        """Yield every distinct key in order."""
        previous = object()
        for key, _ in self.range():
            if key != previous:
                yield key
                previous = key

    # ------------------------------------------------------------------
    # size accounting (used by the index-size experiments)
    # ------------------------------------------------------------------
    def approximate_bytes(self) -> int:
        """A deterministic estimate of the memory footprint of this tree."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += 64  # node overhead
            for key in node.keys:
                total += _sizeof(key)
            for values in node.values:
                total += 16 + sum(_sizeof(v) for v in values)
            stack.extend(node.children)
        return total


def _sizeof(value: Any) -> int:
    """Rough, platform-independent size estimate used for index accounting."""
    if isinstance(value, str):
        return 49 + len(value)
    if isinstance(value, (int, float)):
        return 28
    if isinstance(value, tuple):
        return 40 + sum(_sizeof(v) for v in value)
    if isinstance(value, (list, set, frozenset)):
        return 56 + sum(_sizeof(v) for v in value)
    if value is None:
        return 16
    return 48
