"""Typed relational tables with secondary B-tree indexes.

The KOKO prototype of the paper stores its posting lists and hierarchy
indexes in PostgreSQL relations (``W``, ``E``, ``PL``, ``POS``, plus the
baseline index relations).  :class:`Table` provides the same abstraction in
process: a named schema, row storage, optional secondary indexes, equality
and range selection, and size accounting for the index-size experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from ..errors import SchemaError, StorageError
from .btree import BTree, _sizeof


@dataclass(frozen=True)
class Column:
    """A column definition: name plus an optional Python type for validation."""

    name: str
    dtype: type | None = None


@dataclass
class Schema:
    """An ordered list of columns."""

    columns: list[Column] = field(default_factory=list)

    @classmethod
    def of(cls, *names: str, types: dict[str, type] | None = None) -> "Schema":
        """Build a schema from column names, e.g. ``Schema.of("word", "x", "y")``."""
        types = types or {}
        return cls([Column(name, types.get(name)) for name in names])

    @property
    def names(self) -> list[str]:
        return [col.name for col in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def index_of(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise SchemaError(f"unknown column {name!r}; schema has {self.names}")

    def validate(self, row: tuple) -> None:
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row has {len(row)} values but schema has {len(self.columns)} columns"
            )
        for value, col in zip(row, self.columns):
            if col.dtype is not None and value is not None and not isinstance(value, col.dtype):
                raise SchemaError(
                    f"column {col.name!r} expects {col.dtype.__name__}, got "
                    f"{type(value).__name__} ({value!r})"
                )


class Table:
    """A heap of rows with named columns and optional secondary indexes.

    Rows are plain tuples ordered as the schema; ``insert`` validates them.
    Secondary indexes are B-trees mapping a column value (or a tuple of
    column values for composite indexes) to row ids.
    """

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema
        self._rows: list[tuple] = []
        self._indexes: dict[str, tuple[tuple[int, ...], BTree]] = {}

    # ------------------------------------------------------------------
    # rows
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def insert(self, row: tuple | list) -> int:
        """Insert a row; returns its row id."""
        row = tuple(row)
        self.schema.validate(row)
        rid = len(self._rows)
        self._rows.append(row)
        for positions, tree in self._indexes.values():
            tree.insert(self._key_for(row, positions), rid)
        return rid

    def insert_many(self, rows: Iterable[tuple | list]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def row(self, rid: int) -> tuple:
        """Fetch a row by row id."""
        try:
            return self._rows[rid]
        except IndexError as exc:  # pragma: no cover - defensive
            raise StorageError(f"row id {rid} out of range for table {self.name!r}") from exc

    def column(self, name: str) -> list[Any]:
        """All values of column *name*, in row order."""
        pos = self.schema.index_of(name)
        return [row[pos] for row in self._rows]

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def create_index(self, index_name: str, columns: list[str] | str, order: int = 64) -> None:
        """Create a secondary B-tree index over *columns* (string or list)."""
        if isinstance(columns, str):
            columns = [columns]
        if index_name in self._indexes:
            raise StorageError(f"index {index_name!r} already exists on {self.name!r}")
        positions = tuple(self.schema.index_of(col) for col in columns)
        tree = BTree(order=order)
        for rid, row in enumerate(self._rows):
            tree.insert(self._key_for(row, positions), rid)
        self._indexes[index_name] = (positions, tree)

    def has_index(self, index_name: str) -> bool:
        return index_name in self._indexes

    @staticmethod
    def _key_for(row: tuple, positions: tuple[int, ...]) -> Any:
        if len(positions) == 1:
            return row[positions[0]]
        return tuple(row[p] for p in positions)

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def select(self, **equalities: Any) -> list[tuple]:
        """Return rows matching all column=value equalities.

        Uses a secondary index when one exists whose leading column is among
        the equality columns; otherwise scans the heap.
        """
        if not equalities:
            return list(self._rows)
        for positions, tree in self._indexes.values():
            lead = self.schema.columns[positions[0]].name
            if lead in equalities:
                # index scan on the leading column, then residual filter
                rids = tree.get(equalities[lead]) if len(positions) == 1 else None
                if rids is None:
                    key = tuple(
                        equalities.get(self.schema.columns[p].name) for p in positions
                    )
                    if None not in key:
                        rids = tree.get(key)
                if rids is not None:
                    rows = [self._rows[rid] for rid in rids]
                    return [row for row in rows if self._matches(row, equalities)]
        return [row for row in self._rows if self._matches(row, equalities)]

    def select_where(self, predicate: Callable[[tuple], bool]) -> list[tuple]:
        """Full scan with an arbitrary row predicate."""
        return [row for row in self._rows if predicate(row)]

    def select_range(self, column: str, low: Any = None, high: Any = None) -> list[tuple]:
        """Rows whose *column* value lies in ``[low, high]`` (inclusive)."""
        pos = self.schema.index_of(column)
        for positions, tree in self._indexes.values():
            if positions == (pos,):
                return [self._rows[rid] for _, rid in tree.range(low, high)]
        result = []
        for row in self._rows:
            value = row[pos]
            if (low is None or value >= low) and (high is None or value <= high):
                result.append(row)
        return result

    def distinct(self, column: str) -> set[Any]:
        """Set of distinct values of *column*."""
        pos = self.schema.index_of(column)
        return {row[pos] for row in self._rows}

    def _matches(self, row: tuple, equalities: dict[str, Any]) -> bool:
        for name, value in equalities.items():
            if row[self.schema.index_of(name)] != value:
                return False
        return True

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    def approximate_bytes(self) -> int:
        """Estimated footprint of the heap plus all secondary indexes."""
        heap = sum(40 + sum(_sizeof(v) for v in row) for row in self._rows)
        indexes = sum(tree.approximate_bytes() for _, tree in self._indexes.values())
        return heap + indexes

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Table(name={self.name!r}, rows={len(self._rows)}, indexes={list(self._indexes)})"
