"""The embedded database: a named collection of tables with persistence.

This plays the role PostgreSQL plays in the paper's prototype — the place
where parsed text and all index relations live — while keeping everything in
process so the experiments measure index-design differences rather than
client/server overhead.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import Iterator

from ..errors import StorageError
from .table import Schema, Table


class Database:
    """A named collection of :class:`Table` objects."""

    def __init__(self, name: str = "koko") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}

    # ------------------------------------------------------------------
    # table management
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: Schema) -> Table:
        """Create and register a new table; fails if the name is taken."""
        if name in self._tables:
            raise StorageError(f"table {name!r} already exists in database {self.name!r}")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table (no error if absent)."""
        self._tables.pop(name, None)

    def table(self, name: str) -> Table:
        """Fetch a table by name."""
        try:
            return self._tables[name]
        except KeyError as exc:
            raise StorageError(
                f"no table {name!r} in database {self.name!r}; "
                f"available: {sorted(self._tables)}"
            ) from exc

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def approximate_bytes(self) -> int:
        """Estimated total footprint of every table and its indexes."""
        return sum(table.approximate_bytes() for table in self._tables.values())

    def summary(self) -> dict[str, dict[str, int]]:
        """Per-table row counts and byte estimates."""
        return {
            name: {"rows": len(table), "bytes": table.approximate_bytes()}
            for name, table in self._tables.items()
        }

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist the database to *path* (pickle format)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as handle:
            pickle.dump(self, handle, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path: str | Path) -> "Database":
        """Load a database previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise StorageError(f"no database file at {path}")
        with path.open("rb") as handle:
            database = pickle.load(handle)
        if not isinstance(database, cls):
            raise StorageError(f"{path} does not contain a Database (got {type(database)})")
        return database

    def export_summary(self, path: str | Path) -> None:
        """Write the :meth:`summary` as JSON (useful for experiment logs)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(self.summary(), handle, indent=2, sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Database(name={self.name!r}, tables={sorted(self._tables)})"
