"""Embedded relational storage substrate (the PostgreSQL stand-in).

Provides typed tables, B-tree secondary indexes, closure tables for
hierarchies, and a :class:`Database` container with persistence.
"""

from .btree import BTree
from .closure import ClosureRow, ClosureTable
from .database import Database
from .table import Column, Schema, Table

__all__ = [
    "BTree",
    "ClosureRow",
    "ClosureTable",
    "Column",
    "Database",
    "Schema",
    "Table",
]
